//! The futility-ranking interface (Section III-A).
//!
//! A futility ranking "maintains a strict total order of the uselessness
//! of cache lines within each partition". A line ranked `r`-th in a
//! partition of `M` lines has futility `f = r / M ∈ (0, 1]`; the line
//! with `f = 1` is the most useless one and is what a fully-associative
//! cache would evict.
//!
//! Concrete rankings (exact LRU, coarse-grain timestamp LRU, LFU, OPT,
//! Random) live in the `ranking` crate; this module only defines the
//! trait plus a minimal exact-LRU used by doc examples and smoke tests.

use crate::fxmap::FxHashMap;
use crate::ids::{AccessMeta, PartitionId, SlotId};
use crate::ostree::{OsTreap, RankQuery};
use crate::scheme_api::{Candidate, Probe};
use crate::snapshot::{read_u64_map, write_u64_map, SnapshotError, SnapshotReader, SnapshotWriter};

/// One resident-line hit, as queued by the engine's batched access
/// pipeline for a deferred bulk [`FutilityRanking::on_hit_batch`] call.
/// `time` is the engine time at which the hit occurred (already
/// advanced past earlier accesses of the same batch).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HitRecord {
    /// Pool the line belongs to (after any foreign-hit retag).
    pub part: PartitionId,
    /// Line address.
    pub addr: u64,
    /// Slot the line occupies. A run contains no evictions, installs or
    /// retags, so the slot ↔ address ↔ pool binding is stable across
    /// the whole run — which is what lets [`HitRunAgg`] use the slot as
    /// a dense dedup index.
    pub slot: SlotId,
    /// Engine time of the hit.
    pub time: u64,
    /// Per-access metadata (next-use for OPT).
    pub meta: AccessMeta,
}

/// Per-slot aggregation scratch for [`FutilityRanking::on_hit_batch`]
/// overrides: collapses a hit run to one callback per *distinct line*.
///
/// Within a run the slot ↔ address binding is fixed (see
/// [`HitRecord::slot`]), so slots index a dense epoch-stamped table —
/// no hashing, no clearing between runs, and no allocation once the
/// tables have grown to the array's slot count.
///
/// Rankings whose per-hit update is a treap upsert use this to skip the
/// intermediate upserts of re-hit lines: an [`OsTreap`]'s observable
/// behaviour is a function of its current key set alone, so applying
/// only the *final* key per line yields the same ranking state as
/// replaying every intermediate key — while doing the expensive
/// `remove + insert` once per distinct line instead of once per hit.
#[derive(Debug, Default)]
pub struct HitRunAgg {
    /// `stamp[slot] == epoch` iff the slot was seen this run.
    stamp: Vec<u64>,
    /// Hits of this run landing on the slot (valid when stamped).
    count: Vec<u32>,
    /// Index into the run of the slot's last record (valid when stamped).
    last: Vec<u32>,
    /// Distinct slots of this run, in first-appearance order.
    touched: Vec<SlotId>,
    epoch: u64,
}

impl HitRunAgg {
    /// An empty scratch; tables grow on first use.
    pub fn new() -> Self {
        HitRunAgg::default()
    }

    /// Invoke `f(last_record, hits_on_that_line)` once per distinct slot
    /// in `hits`, in first-appearance order. `last_record` is the run's
    /// final record for that slot and `hits_on_that_line` how many of
    /// the run's records landed on it.
    pub fn for_each_line(&mut self, hits: &[HitRecord], mut f: impl FnMut(&HitRecord, u32)) {
        self.epoch += 1;
        self.touched.clear();
        for (i, h) in hits.iter().enumerate() {
            let s = h.slot as usize;
            if s >= self.stamp.len() {
                // Settles at the array's slot count: allocation-free
                // once the cache has been warmed.
                self.stamp.resize(s + 1, 0);
                self.count.resize(s + 1, 0);
                self.last.resize(s + 1, 0);
            }
            if self.stamp[s] == self.epoch {
                self.count[s] += 1;
            } else {
                self.stamp[s] = self.epoch;
                self.count[s] = 1;
                self.touched.push(h.slot);
            }
            self.last[s] = i as u32;
        }
        for &slot in &self.touched {
            let s = slot as usize;
            f(&hits[self.last[s] as usize], self.count[s]);
        }
    }

    /// Invoke `f(record, is_last)` for **every** record of `hits`, in
    /// run order, where `is_last` is true iff the record is its line's
    /// final record of the run.
    ///
    /// This is the dedup shape for rankings that replicate a cheap
    /// per-record half (timestamp/generation ticks, which may observe
    /// every access) but whose per-line state is a *last-writer-wins*
    /// overwrite: the expensive part (a bucket move, a map write) runs
    /// once per distinct line, exactly at the position the scalar
    /// replay would leave it, so the final per-line state *and* any
    /// observable touch order match the scalar path bit for bit.
    pub fn for_each_record_tagged(
        &mut self,
        hits: &[HitRecord],
        mut f: impl FnMut(&HitRecord, bool),
    ) {
        for h in hits {
            let s = h.slot as usize;
            if s >= self.stamp.len() {
                // Kept in lockstep with `for_each_line`'s tables (a
                // shorter `last` there would otherwise truncate ours).
                self.stamp.resize(s + 1, 0);
                self.count.resize(s + 1, 0);
                self.last.resize(s + 1, 0);
            }
        }
        for (i, h) in hits.iter().enumerate() {
            self.last[h.slot as usize] = i as u32;
        }
        for (i, h) in hits.iter().enumerate() {
            f(h, self.last[h.slot as usize] == i as u32);
        }
    }
}

/// Per-partition futility bookkeeping driven by the simulation engine.
///
/// All methods take the *pool* the line belongs to; pools `0..N` are the
/// application partitions and higher pools are scheme-internal (e.g.
/// Vantage's unmanaged region).
pub trait FutilityRanking: Send {
    /// Short identifier, e.g. `"lru"`, `"opt"`, `"coarse-lru"`.
    fn name(&self) -> &'static str;

    /// (Re)initialize for `pools` pools, dropping all state.
    fn reset(&mut self, pools: usize);

    /// A new line `addr` was inserted into `part` at engine time `time`.
    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta);

    /// Line `addr` in `part` was hit at engine time `time`.
    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta);

    /// Apply a run of hits in one call. Must be observably identical to
    /// calling [`on_hit`](Self::on_hit) once per record *in order* —
    /// the default does exactly that. The engine's batched pipeline
    /// accumulates consecutive simple hits and flushes them here before
    /// anything that could depend on ranking state (a miss, a foreign
    /// hit, the end of the batch), so rankings may override this to
    /// amortize per-call overhead across the run.
    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        for h in hits {
            self.on_hit(h.part, h.addr, h.time, h.meta);
        }
    }

    /// Whether hits change any state of this ranking. Rankings whose
    /// [`on_hit`](Self::on_hit) is a no-op (stable random ranks)
    /// return `false`, letting the engine's batched pipeline skip
    /// collecting [`HitRecord`]s altogether. Must be constant for the
    /// lifetime of the ranking.
    fn wants_hit_records(&self) -> bool {
        true
    }

    /// Line `addr` was evicted from `part`.
    fn on_evict(&mut self, part: PartitionId, addr: u64);

    /// Line `addr` migrated from pool `from` to pool `to` without leaving
    /// the cache (used by demotion-based schemes such as Vantage).
    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64);

    /// The futility of `addr` within `part`, in `[0, 1]`, as seen by the
    /// replacement scheme. For approximate rankings (coarse-grain
    /// timestamps) this is the approximation the hardware would compute.
    fn futility(&self, part: PartitionId, addr: u64) -> f64;

    /// Fill `futility` for a whole eviction candidate set in one call.
    ///
    /// Semantically identical to calling [`futility`](Self::futility)
    /// per candidate — the default does exactly that — but rankings
    /// override it to amortize work across the `R` candidates: exact
    /// (treap-backed) rankings batch all lookups into one shared tree
    /// descent, coarse rankings collapse the per-call `Option` chains
    /// into a tight loop. Implementations must produce bitwise-identical
    /// values to the scalar path; `&mut self` only licenses reuse of
    /// internal scratch buffers, never observable state changes.
    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        for c in cands {
            c.futility = self.futility(c.part, c.addr);
        }
    }

    /// Fill `out` with one raw *hardware-futility numerator* per
    /// candidate (in candidate order) and return `true`, or return
    /// `false` (leaving `out` unspecified) if this ranking has no byte
    /// lane — the default. Implementations must guarantee a
    /// ranking-wide power-of-two denominator `D ≤ 256` such that for
    /// every candidate `futility(c) == out[i] as f64 / D` *exactly*
    /// (untracked lines report 0) with `out[i] ≤ 255`. Because the
    /// numerators and any power-of-two scaling up to `2^7` are exactly
    /// representable in `f64`, integer comparison of (shifted)
    /// numerators coincides with the scalar `f64` futility comparison —
    /// including ties — which is what lets byte-capable schemes
    /// ([`PartitionScheme::victim_from_bytes`](crate::scheme_api::PartitionScheme::victim_from_bytes))
    /// pick victims with a SWAR argmax while staying bit-exact. As with
    /// [`futility_batch`](Self::futility_batch), `&mut self` only
    /// licenses scratch reuse, never observable state changes.
    fn futility_bytes(&mut self, _cands: &[Candidate], _out: &mut Vec<u16>) -> bool {
        false
    }

    /// Whether [`futility`](Self::futility) already equals
    /// [`true_futility`](Self::true_futility) (no approximation). Exact
    /// rankings return `true`, letting the engine reuse the victim's
    /// candidate futility for eviction stats instead of paying a second
    /// ranked lookup.
    fn futility_is_exact(&self) -> bool {
        false
    }

    /// The *exact* normalized rank of `addr` within `part`, used for
    /// measuring associativity distributions. Defaults to
    /// [`futility`](Self::futility); approximate rankings may override it
    /// with a precise shadow rank.
    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        self.futility(part, addr)
    }

    /// The globally most-futile line of `part`, if the ranking can answer
    /// that (needed only by the idealized fully-associative scheme).
    fn max_futility_line(&self, part: PartitionId) -> Option<u64>;

    /// Number of lines currently tracked in `part`.
    fn pool_len(&self, part: PartitionId) -> usize;

    /// Enable (or disable) the ranking's internal operation counters —
    /// inserts, removes, hit touches, retags, rank and byte-lane
    /// queries — surfaced through [`telemetry`](Self::telemetry).
    /// Follows the lazy/opt-in discipline of the futility histogram:
    /// disabled (the default, and the default implementation ignores
    /// the call) the hot path pays at most a predictable branch.
    fn set_op_probes(&mut self, _enabled: bool) {}

    /// Push ranking-level telemetry probes, sampled by the flight
    /// recorder on every tick after the scheme's probes. Rankings with
    /// op counters enabled emit per-interval operation counts here so
    /// miss-path time can be attributed to ranking ops; the default
    /// (and any ranking with probes disabled) emits nothing, keeping
    /// all existing recorder output byte-identical.
    fn telemetry(&self, _out: &mut Vec<Probe>) {}

    /// Serialize all ranking state — pool contents, timestamps, shadow
    /// structures, internal RNG streams — for checkpointing, such that a
    /// restored ranking continues bit-identically (DESIGN.md §11).
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restore state saved by [`save_state`](Self::save_state) into a
    /// ranking of the same kind.
    ///
    /// # Errors
    /// [`SnapshotError`] on decode failure or configuration mismatch.
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError>;
}

/// Boxed rankings forward every method (including overridden defaults),
/// so a generic [`EngineCore`](crate::engine::EngineCore) instantiated
/// with `Box<dyn FutilityRanking>` behaves exactly like one
/// instantiated with the concrete ranking.
impl<T: FutilityRanking + ?Sized> FutilityRanking for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn reset(&mut self, pools: usize) {
        (**self).reset(pools)
    }
    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta) {
        (**self).on_insert(part, addr, time, meta)
    }
    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, meta: AccessMeta) {
        (**self).on_hit(part, addr, time, meta)
    }
    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        (**self).on_hit_batch(hits)
    }
    fn wants_hit_records(&self) -> bool {
        (**self).wants_hit_records()
    }
    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        (**self).on_evict(part, addr)
    }
    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        (**self).on_retag(from, to, addr)
    }
    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        (**self).futility(part, addr)
    }
    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        (**self).futility_batch(cands)
    }
    fn futility_bytes(&mut self, cands: &[Candidate], out: &mut Vec<u16>) -> bool {
        (**self).futility_bytes(cands, out)
    }
    fn futility_is_exact(&self) -> bool {
        (**self).futility_is_exact()
    }
    fn true_futility(&self, part: PartitionId, addr: u64) -> f64 {
        (**self).true_futility(part, addr)
    }
    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        (**self).max_futility_line(part)
    }
    fn pool_len(&self, part: PartitionId) -> usize {
        (**self).pool_len(part)
    }
    fn set_op_probes(&mut self, enabled: bool) {
        (**self).set_op_probes(enabled)
    }
    fn telemetry(&self, out: &mut Vec<Probe>) {
        (**self).telemetry(out)
    }
    fn save_state(&self, w: &mut SnapshotWriter) {
        (**self).save_state(w)
    }
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        (**self).load_state(r)
    }
}

/// Minimal exact-LRU ranking built directly on [`OsTreap`]; used by doc
/// examples and as a reference model in tests. The `ranking` crate's
/// `ExactLru` is the full-featured equivalent.
#[derive(Debug, Default)]
pub struct NaiveLru {
    pools: Vec<Pool>,
    scratch: Vec<RankQuery<(u64, u64)>>,
    agg: HitRunAgg,
}

#[derive(Debug)]
struct Pool {
    by_time: OsTreap<(u64, u64)>,
    last: FxHashMap<u64, u64>,
}

impl NaiveLru {
    /// Create an empty ranking; pools are sized on
    /// [`reset`](FutilityRanking::reset).
    pub fn new() -> Self {
        NaiveLru::default()
    }

    fn pool_mut(&mut self, part: PartitionId) -> &mut Pool {
        let idx = part.index();
        if idx >= self.pools.len() {
            self.pools.resize_with(idx + 1, Pool::default);
        }
        &mut self.pools[idx]
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool {
            by_time: OsTreap::new(0xACE5),
            last: FxHashMap::default(),
        }
    }
}

impl FutilityRanking for NaiveLru {
    fn name(&self) -> &'static str {
        "naive-lru"
    }

    fn reset(&mut self, pools: usize) {
        self.pools.clear();
        self.pools.resize_with(pools, Pool::default);
    }

    fn on_insert(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        pool.by_time.insert((time, addr));
        pool.last.insert(addr, time);
    }

    fn on_hit(&mut self, part: PartitionId, addr: u64, time: u64, _meta: AccessMeta) {
        let pool = self.pool_mut(part);
        if let Some(old) = pool.last.insert(addr, time) {
            pool.by_time.remove(&(old, addr));
        }
        pool.by_time.insert((time, addr));
    }

    fn on_hit_batch(&mut self, hits: &[HitRecord]) {
        // The treap's observable state is a function of its key set, so
        // only each line's final time matters: re-hit lines pay one
        // remove + insert instead of one per hit.
        if let Some(max) = hits.iter().map(|h| h.part.index()).max() {
            self.pool_mut(PartitionId(max as u16));
        }
        let NaiveLru { pools, agg, .. } = self;
        agg.for_each_line(hits, |h, _| {
            let pool = &mut pools[h.part.index()];
            if let Some(old) = pool.last.insert(h.addr, h.time) {
                pool.by_time.remove(&(old, h.addr));
            }
            pool.by_time.insert((h.time, h.addr));
        });
    }

    fn on_evict(&mut self, part: PartitionId, addr: u64) {
        let pool = self.pool_mut(part);
        if let Some(old) = pool.last.remove(&addr) {
            pool.by_time.remove(&(old, addr));
        }
    }

    fn on_retag(&mut self, from: PartitionId, to: PartitionId, addr: u64) {
        let time = {
            let pool = self.pool_mut(from);
            match pool.last.remove(&addr) {
                Some(t) => {
                    pool.by_time.remove(&(t, addr));
                    t
                }
                None => return,
            }
        };
        let pool = self.pool_mut(to);
        pool.by_time.insert((time, addr));
        pool.last.insert(addr, time);
    }

    fn futility(&self, part: PartitionId, addr: u64) -> f64 {
        let pool = match self.pools.get(part.index()) {
            Some(p) => p,
            None => return 0.0,
        };
        let time = match pool.last.get(&addr) {
            Some(&t) => t,
            None => return 0.0,
        };
        let m = pool.by_time.len();
        if m == 0 {
            return 0.0;
        }
        // rank = number of lines touched longer ago than this one.
        let rank = pool.by_time.rank(&(time, addr));
        (m - rank) as f64 / m as f64
    }

    fn futility_batch(&mut self, cands: &mut [Candidate]) {
        self.scratch.clear();
        for (i, c) in cands.iter_mut().enumerate() {
            let time = self
                .pools
                .get(c.part.index())
                .and_then(|p| p.last.get(&c.addr).copied());
            match time {
                Some(t) => self.scratch.push(RankQuery {
                    pool: c.part.index() as u32,
                    key: (t, c.addr),
                    tag: i as u32,
                    rank: 0,
                }),
                None => c.futility = 0.0,
            }
        }
        self.scratch.sort_unstable();
        let mut s = 0;
        while s < self.scratch.len() {
            let pool_idx = self.scratch[s].pool as usize;
            let mut e = s + 1;
            while e < self.scratch.len() && self.scratch[e].pool as usize == pool_idx {
                e += 1;
            }
            let by_time = &self.pools[pool_idx].by_time;
            let m = by_time.len();
            if m == 0 {
                for q in &self.scratch[s..e] {
                    cands[q.tag as usize].futility = 0.0;
                }
            } else {
                by_time.rank_many(&mut self.scratch[s..e]);
                for q in &self.scratch[s..e] {
                    cands[q.tag as usize].futility = (m - q.rank as usize) as f64 / m as f64;
                }
            }
            s = e;
        }
    }

    fn futility_is_exact(&self) -> bool {
        true
    }

    fn max_futility_line(&self, part: PartitionId) -> Option<u64> {
        self.pools
            .get(part.index())
            .and_then(|p| p.by_time.min())
            .map(|&(_, addr)| addr)
    }

    fn pool_len(&self, part: PartitionId) -> usize {
        self.pools.get(part.index()).map_or(0, |p| p.by_time.len())
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("naive-lru");
        w.usize(self.pools.len());
        for pool in &self.pools {
            pool.by_time.save_state(w, |w, k| {
                w.u64(k.0);
                w.u64(k.1);
            });
            write_u64_map(w, &pool.last);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("naive-lru")?;
        let n = r.seq_len(1)?;
        let mut pools = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pool = Pool::default();
            pool.by_time.load_state(r, |r| Ok((r.u64()?, r.u64()?)))?;
            pool.last = read_u64_map(r)?;
            if pool.last.len() != pool.by_time.len() {
                return Err(SnapshotError::corrupt(
                    "LRU pool index and treap disagree on line count",
                ));
            }
            pools.push(pool);
        }
        r.end()?;
        self.pools = pools;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PartitionId = PartitionId(0);

    #[test]
    fn oldest_line_has_futility_one() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_insert(P, 11, 1, AccessMeta::default());
        r.on_insert(P, 12, 2, AccessMeta::default());
        assert!((r.futility(P, 10) - 1.0).abs() < 1e-12);
        assert!((r.futility(P, 12) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_futility_line(P), Some(10));
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_insert(P, 11, 1, AccessMeta::default());
        r.on_hit(P, 10, 2, AccessMeta::default());
        assert_eq!(r.max_futility_line(P), Some(11));
        assert!((r.futility(P, 11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evict_removes_line() {
        let mut r = NaiveLru::new();
        r.reset(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_evict(P, 10);
        assert_eq!(r.pool_len(P), 0);
        assert_eq!(r.futility(P, 10), 0.0);
    }

    #[test]
    fn hit_run_agg_collapses_to_last_record_per_slot() {
        let mut agg = HitRunAgg::new();
        let rec = |slot: SlotId, time: u64| HitRecord {
            part: P,
            addr: 100 + slot as u64,
            slot,
            time,
            meta: AccessMeta::default(),
        };
        let hits = [rec(3, 1), rec(7, 2), rec(3, 3), rec(3, 4), rec(1, 5)];
        let mut seen = Vec::new();
        agg.for_each_line(&hits, |h, n| seen.push((h.slot, h.time, n)));
        assert_eq!(seen, vec![(3, 4, 3), (7, 2, 1), (1, 5, 1)]);
        // Epoch stamping: the next run must not see stale counts.
        let hits2 = [rec(3, 9)];
        seen.clear();
        agg.for_each_line(&hits2, |h, n| seen.push((h.slot, h.time, n)));
        assert_eq!(seen, vec![(3, 9, 1)]);
    }

    #[test]
    fn tagged_iteration_marks_exactly_the_last_records() {
        let mut agg = HitRunAgg::new();
        let rec = |slot: SlotId, time: u64| HitRecord {
            part: P,
            addr: 100 + slot as u64,
            slot,
            time,
            meta: AccessMeta::default(),
        };
        let hits = [rec(3, 1), rec(7, 2), rec(3, 3), rec(3, 4), rec(1, 5)];
        let mut seen = Vec::new();
        agg.for_each_record_tagged(&hits, |h, last| seen.push((h.time, last)));
        assert_eq!(
            seen,
            vec![(1, false), (2, true), (3, false), (4, true), (5, true)]
        );
        // Interleaving with `for_each_line` keeps both iterators sound
        // (shared tables, lockstep growth).
        let hits2 = [rec(9, 8), rec(3, 9)];
        seen.clear();
        agg.for_each_record_tagged(&hits2, |h, last| seen.push((h.time, last)));
        assert_eq!(seen, vec![(8, true), (9, true)]);
        let mut lines = Vec::new();
        agg.for_each_line(&hits, |h, n| lines.push((h.slot, n)));
        assert_eq!(lines, vec![(3, 3), (7, 1), (1, 1)]);
    }

    #[test]
    fn naive_lru_hit_batch_matches_scalar_replay() {
        let mut scalar = NaiveLru::new();
        let mut batched = NaiveLru::new();
        scalar.reset(2);
        batched.reset(2);
        let mut hits = Vec::new();
        for (slot, t) in [(0u32, 10u64), (1, 11), (0, 12), (2, 13), (0, 14)] {
            let part = PartitionId((slot % 2) as u16);
            let addr = 50 + slot as u64;
            scalar.on_insert(part, addr, 1, AccessMeta::default());
            batched.on_insert(part, addr, 1, AccessMeta::default());
            hits.push(HitRecord {
                part,
                addr,
                slot,
                time: t,
                meta: AccessMeta::default(),
            });
        }
        for h in &hits {
            scalar.on_hit(h.part, h.addr, h.time, h.meta);
        }
        batched.on_hit_batch(&hits);
        for h in &hits {
            assert_eq!(
                scalar.futility(h.part, h.addr),
                batched.futility(h.part, h.addr)
            );
        }
        assert_eq!(scalar.max_futility_line(P), batched.max_futility_line(P));
    }

    #[test]
    fn retag_moves_line_between_pools() {
        let mut r = NaiveLru::new();
        r.reset(2);
        let q = PartitionId(1);
        r.on_insert(P, 10, 0, AccessMeta::default());
        r.on_retag(P, q, 10);
        assert_eq!(r.pool_len(P), 0);
        assert_eq!(r.pool_len(q), 1);
        assert_eq!(r.max_futility_line(q), Some(10));
    }
}
