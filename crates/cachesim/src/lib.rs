#![warn(missing_docs)]

//! Cache-simulation substrate for the Futility Scaling reproduction.
//!
//! This crate implements the cache model of Section III-A of the paper
//! (*Futility Scaling: High-Associativity Cache Partitioning*, MICRO 2014):
//! a cache is a **cache array** that provides a list of `R` replacement
//! candidates on every eviction, a **futility ranking** that maintains a
//! strict total order of the uselessness of lines within each partition,
//! and a **replacement policy** (here: a [`PartitionScheme`]) that picks
//! the victim from the candidate list based on futility and partitioning
//! requirements.
//!
//! The three components are composed by [`PartitionedCache`], the
//! trace-driven simulation engine. Concrete futility rankings live in the
//! `ranking` crate, the Futility Scaling schemes in `futility-core`, and
//! the baseline schemes (PF, Vantage, PriSM, …) in `baselines`.
//!
//! # Example
//!
//! ```
//! use cachesim::{PartitionedCache, PartitionId, AccessMeta};
//! use cachesim::array::SetAssociative;
//!
//! // A 64-set, 16-way cache (1024 lines) with hashed indexing.
//! let array = SetAssociative::new(64, 16, cachesim::hashing::LineHash::new(1));
//! let ranking = cachesim::naive_lru(); // trivial built-in ranking for demos
//! let scheme = cachesim::evict_max_futility(); // unpartitioned policy
//! let mut cache = PartitionedCache::new(Box::new(array), ranking, scheme, 1);
//! let out = cache.access(PartitionId(0), 0x40, AccessMeta::default());
//! assert!(!out.is_hit());
//! ```

pub mod array;
pub mod bucketrank;
pub mod engine;
pub mod fxmap;
pub mod hashing;
pub mod ids;
pub mod ostree;
pub mod prng;
pub mod ranking_api;
pub mod recorder;
pub mod scheme_api;
pub mod sharded;
pub mod snapshot;
pub mod stats;
pub mod swar;
pub mod trace;
pub mod umon;

pub use engine::{AccessBlock, AccessOutcome, Engine, EngineCore, Eviction, PartitionedCache};
pub use ids::{AccessMeta, Occupant, PartitionId, SlotId, NO_NEXT_USE};
pub use ranking_api::{FutilityRanking, HitRecord, HitRunAgg};
pub use recorder::{RecordCtx, Recorder, Sample, TimeSeriesRecorder};
pub use scheme_api::{Candidate, PartitionScheme, PartitionState, Probe, VictimDecision};
pub use sharded::{shard_of, ShardedEngine};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::CacheStats;
pub use trace::{Access, Trace};

use ranking_api::NaiveLru;
use scheme_api::EvictMaxFutility;

/// A trivially simple exact-LRU futility ranking, suitable for doc
/// examples and smoke tests. Real experiments use the `ranking` crate.
pub fn naive_lru() -> Box<dyn FutilityRanking> {
    Box::new(NaiveLru::new())
}

/// The unpartitioned replacement policy: always evict the candidate with
/// the largest futility. This is what a non-partitioned cache does
/// (Section III-B: "the replacement policy is always able to choose the
/// least useful candidate").
pub fn evict_max_futility() -> Box<dyn PartitionScheme> {
    Box::new(EvictMaxFutility)
}
