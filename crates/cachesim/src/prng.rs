//! In-tree pseudo-random number generation: SplitMix64 for seeding and
//! stream derivation, xoshiro256** for the simulation streams.
//!
//! The workspace builds with zero external dependencies, so this module
//! replaces the `rand` crate for every randomized component (workload
//! generators, PriSM's sampling, the random-candidates array, the
//! property-test harness). Both generators are the reference algorithms
//! by Blackman & Vigna (public domain); they are deterministic across
//! platforms, which is what makes fixed-seed experiments reproducible
//! bit-for-bit.
//!
//! # Streams and reproducibility
//!
//! Every randomized component takes an explicit `u64` seed. Independent
//! streams are derived, never shared: [`seed_for`] maps an experiment
//! name plus a point index to a stream seed, so a sweep point's RNG
//! stream depends only on *what* it computes — not on which worker
//! thread picked it up or in what order jobs completed.

/// SplitMix64: a tiny, full-period generator used to expand one `u64`
/// seed into xoshiro state and to derive sub-seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The raw generator state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Rebuild a generator from [`state`](SplitMix64::state); the
    /// restored stream continues exactly where the saved one stopped.
    pub fn from_state(state: u64) -> Self {
        SplitMix64(state)
    }
}

/// xoshiro256**: the workhorse generator. 256 bits of state, period
/// 2^256 − 1, passes BigCrush; seeded from a single `u64` through
/// SplitMix64 as the authors recommend.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// The default simulation PRNG (alias so call sites stay short).
pub type Prng = Xoshiro256;

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion (never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in a half-open or inclusive range, e.g.
    /// `rng.gen_range(0..n)` or `rng.gen_range(1..=max)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: IntRange<T>,
    {
        let (lo, span) = range.bounds();
        lo.offset(self.bounded(span))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derive an independent child generator (for per-component streams
    /// split off one master seed).
    pub fn fork(&mut self) -> Self {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit generator state, for checkpointing.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from [`state`](Xoshiro256::state); the
    /// restored stream continues exactly where the saved one stopped.
    pub fn from_state(s: [u64; 4]) -> Self {
        Xoshiro256 { s }
    }

    /// Unbiased uniform draw in `[0, span)` (`span == 0` means the full
    /// 64-bit range) via Lemire's multiply-shift with rejection.
    #[inline]
    fn bounded(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Integer types [`Xoshiro256::gen_range`] can draw.
pub trait UniformInt: Copy {
    /// Widen to the `u64` the sampler works in.
    fn to_u64(self) -> u64;
    /// `self + delta`, narrowing back to `Self`.
    fn offset(self, delta: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn offset(self, delta: u64) -> Self {
                (self as u64).wrapping_add(delta) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`Xoshiro256::gen_range`].
pub trait IntRange<T: UniformInt> {
    /// `(low, span)` where `span == 0` encodes the full 64-bit range.
    fn bounds(&self) -> (T, u64);
}

impl<T: UniformInt> IntRange<T> for std::ops::Range<T> {
    fn bounds(&self) -> (T, u64) {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range on empty range");
        (self.start, hi - lo)
    }
}

impl<T: UniformInt> IntRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, u64) {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range on empty range");
        (*self.start(), (hi - lo).wrapping_add(1))
    }
}

/// Derive the deterministic seed of one sweep point: a hash of the
/// experiment name mixed with the point index, finalized through
/// SplitMix64. Independent of thread scheduling by construction.
pub fn seed_for(name: &str, index: u64) -> u64 {
    // FNV-1a over the name, then mix in the index.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SplitMix64::new(h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 (from the public-domain C
        // implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_streams_differ() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        let mut c = Prng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Prng::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99, "covers the interval");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = Prng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&x));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(9u64..=9), 9);
    }

    #[test]
    fn gen_range_is_statistically_uniform() {
        let mut rng = Prng::seed_from_u64(5);
        let n = 7u64;
        let mut counts = [0u32; 7];
        let trials = 70_000;
        for _ in 0..trials {
            counts[rng.gen_range(0..n) as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Prng::seed_from_u64(6);
        let _ = rng.gen_range(3u32..3);
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = Prng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay put");
    }

    #[test]
    fn seed_for_depends_on_name_and_index_only() {
        assert_eq!(seed_for("fig2", 3), seed_for("fig2", 3));
        assert_ne!(seed_for("fig2", 3), seed_for("fig2", 4));
        assert_ne!(seed_for("fig2", 3), seed_for("fig3", 3));
    }

    #[test]
    fn state_round_trip_continues_both_streams() {
        let mut sm = SplitMix64::new(42);
        let _ = sm.next_u64();
        let mut sm2 = SplitMix64::from_state(sm.state());
        assert_eq!(sm.next_u64(), sm2.next_u64());

        let mut rng = Prng::seed_from_u64(42);
        for _ in 0..5 {
            let _ = rng.next_u64();
        }
        let mut rng2 = Prng::from_state(rng.state());
        let a: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| rng2.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fork_yields_independent_streams() {
        let mut parent = Prng::seed_from_u64(11);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
