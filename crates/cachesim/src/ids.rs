//! Core identifier and metadata types shared across the cache model.

/// Identifies one partition (one "pool" of lines) within a shared cache.
///
/// Partitions `0..N` are the application partitions configured on the
/// [`PartitionedCache`](crate::PartitionedCache); schemes may request
/// additional internal pools (e.g. Vantage's unmanaged region), which are
/// numbered `N..N+extra`.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct PartitionId(pub u16);

impl PartitionId {
    /// The partition index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PartitionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a physical line slot within a cache array.
pub type SlotId = u32;

/// Sentinel "this line is never referenced again" next-use time, used by
/// the OPT (Belady) futility ranking.
pub const NO_NEXT_USE: u64 = u64::MAX;

/// The occupant of a cache slot: a line address plus its partition tag.
#[derive(Copy, Clone, Eq, PartialEq, Hash, Debug)]
pub struct Occupant {
    /// Line (block) address. The simulator works at line granularity, so
    /// this is `byte_address / line_size`.
    pub addr: u64,
    /// Which partition the line belongs to.
    pub part: PartitionId,
}

/// Per-access metadata handed to the futility ranking.
///
/// `next_use` carries the index of the next access to the same address in
/// the same trace (or [`NO_NEXT_USE`]); it is produced by
/// [`Trace::annotate_next_use`](crate::trace::Trace::annotate_next_use)
/// and is only consumed by the OPT ranking — practical rankings ignore it.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct AccessMeta {
    /// Next reference time of this address, or [`NO_NEXT_USE`].
    pub next_use: u64,
}

impl Default for AccessMeta {
    fn default() -> Self {
        AccessMeta {
            next_use: NO_NEXT_USE,
        }
    }
}

impl AccessMeta {
    /// Metadata carrying a known next-use time (for OPT rankings).
    pub fn with_next_use(next_use: u64) -> Self {
        AccessMeta { next_use }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_id_display_and_index() {
        let p = PartitionId(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.to_string(), "P7");
    }

    #[test]
    fn access_meta_default_has_no_next_use() {
        assert_eq!(AccessMeta::default().next_use, NO_NEXT_USE);
        assert_eq!(AccessMeta::with_next_use(42).next_use, 42);
    }

    #[test]
    fn partition_ids_order_by_raw_value() {
        assert!(PartitionId(1) < PartitionId(2));
        assert_eq!(PartitionId(3), PartitionId(3));
    }
}
