//! Hash functions for cache indexing.
//!
//! Section III-B of the paper notes that good hash indexing "spreads out
//! accesses" and is a precondition for the uniformity assumption of the
//! analytical framework; the evaluated system uses "an XOR-based
//! indexing" and cites H3 hashing for set-associative arrays.
//!
//! [`LineHash`] is the strong mixer used by default (a seeded
//! splitmix64-style finalizer, statistically indistinguishable from a
//! random function for this purpose); [`H3Hash`] is a faithful H3
//! universal hash (one random row per input bit, output = XOR of selected
//! rows); [`XorFold`] is the cheap XOR-folding index traditionally used
//! in hardware.

/// A 64-bit → 64-bit hash function suitable for cache indexing.
pub trait IndexHash: Send {
    /// Hash a line address into a 64-bit value; callers reduce it to a
    /// set index with a modulo or bit-mask.
    fn hash(&self, addr: u64) -> u64;
}

/// Seeded splitmix64 finalizer: the default "good random hash" of the
/// simulator. Distinct seeds give (practically) independent functions,
/// which skew-associative arrays and zcaches rely on.
#[derive(Clone, Debug)]
pub struct LineHash {
    seed: u64,
}

impl LineHash {
    /// Create a hash function from a seed. Seed 0 is remapped internally
    /// so that it still produces a non-trivial function.
    pub fn new(seed: u64) -> Self {
        LineHash {
            seed: seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678_9ABC_DEF0),
        }
    }
}

impl IndexHash for LineHash {
    #[inline]
    fn hash(&self, addr: u64) -> u64 {
        let mut z = addr.wrapping_add(self.seed);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// H3 universal hashing: `h(x) = XOR of rows[i] for each set bit i of x`.
///
/// This is the hash family referenced by the zcache paper for providing
/// uniformly distributed replacement candidates.
#[derive(Clone, Debug)]
pub struct H3Hash {
    rows: [u64; 64],
}

impl H3Hash {
    /// Build an H3 function whose 64 rows are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rows = [0u64; 64];
        let base = LineHash::new(seed);
        for (i, row) in rows.iter_mut().enumerate() {
            *row = base.hash(i as u64 + 1);
        }
        H3Hash { rows }
    }
}

impl IndexHash for H3Hash {
    #[inline]
    fn hash(&self, addr: u64) -> u64 {
        let mut acc = 0u64;
        let mut x = addr;
        let mut i = 0;
        while x != 0 {
            if x & 1 == 1 {
                acc ^= self.rows[i];
            }
            x >>= 1;
            i += 1;
        }
        acc
    }
}

/// XOR-folding: fold the address into 16-bit chunks and XOR them
/// together. Cheap, hardware-friendly, but weaker than [`LineHash`].
#[derive(Clone, Copy, Debug, Default)]
pub struct XorFold;

impl IndexHash for XorFold {
    #[inline]
    fn hash(&self, addr: u64) -> u64 {
        let a = addr & 0xFFFF;
        let b = (addr >> 16) & 0xFFFF;
        let c = (addr >> 32) & 0xFFFF;
        let d = (addr >> 48) & 0xFFFF;
        a ^ b ^ c ^ d
    }
}

/// The identity "hash": set index is the low address bits. This is the
/// un-hashed indexing of a conventional cache, kept for the
/// direct-mapped/conflict-miss experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModuloIndex;

impl IndexHash for ModuloIndex {
    #[inline]
    fn hash(&self, addr: u64) -> u64 {
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chi-square-ish sanity check: hashing sequential addresses into 64
    /// buckets should give a roughly uniform distribution.
    fn bucket_spread<H: IndexHash>(h: &H, n: u64, buckets: usize) -> (usize, usize) {
        let mut counts = vec![0usize; buckets];
        for a in 0..n {
            counts[(h.hash(a) % buckets as u64) as usize] += 1;
        }
        (*counts.iter().min().unwrap(), *counts.iter().max().unwrap())
    }

    #[test]
    fn line_hash_spreads_sequential_addresses() {
        let h = LineHash::new(42);
        let (min, max) = bucket_spread(&h, 64 * 1000, 64);
        // Expected 1000 per bucket; allow generous slack.
        assert!(min > 800 && max < 1200, "min={min} max={max}");
    }

    #[test]
    fn h3_spreads_sequential_addresses() {
        let h = H3Hash::new(7);
        let (min, max) = bucket_spread(&h, 64 * 1000, 64);
        assert!(min > 800 && max < 1200, "min={min} max={max}");
    }

    #[test]
    fn distinct_seeds_give_distinct_functions() {
        let h1 = LineHash::new(1);
        let h2 = LineHash::new(2);
        let same = (0..1000).filter(|&a| h1.hash(a) == h2.hash(a)).count();
        assert!(same < 5);
    }

    #[test]
    fn h3_is_linear_in_xor() {
        // H3 is XOR-linear: h(a ^ b) == h(a) ^ h(b) for h(0) == 0.
        let h = H3Hash::new(3);
        assert_eq!(h.hash(0), 0);
        for (a, b) in [(1u64, 2u64), (0xFF, 0xF0F0), (12345, 987654321)] {
            assert_eq!(h.hash(a ^ b), h.hash(a) ^ h.hash(b));
        }
    }

    #[test]
    #[allow(clippy::identity_op)] // spell out the 16-bit XOR fold
    fn xor_fold_is_deterministic_and_bounded() {
        let h = XorFold;
        assert_eq!(h.hash(0x0001_0002_0003_0004), 1 ^ 2 ^ 3 ^ 4);
        assert!(h.hash(u64::MAX) <= 0xFFFF);
    }

    #[test]
    fn modulo_index_is_identity() {
        assert_eq!(ModuloIndex.hash(12345), 12345);
    }
}
