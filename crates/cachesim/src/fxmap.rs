//! Fast, non-cryptographic hashing for the simulator's hot hash maps
//! (address → slot, address → rank key). The simulator performs several
//! map operations per cache access, and the standard library's SipHash
//! dominates the profile; this multiply-xor hasher (the rustc "Fx"
//! construction) is ~5x cheaper and perfectly adequate for u64 line
//! addresses. Not DoS-resistant — do not use for untrusted keys.
//!
//! The residency index deliberately stays `FxHashMap` (std's hashbrown
//! with this hasher) rather than a hand-rolled open-addressing table:
//! a prototype `u64 → u32` table with linear probing + backward-shift
//! deletion — and a second version with hashbrown-style control bytes —
//! both measured ~3x slower than hashbrown on the miss-path churn mix
//! (missed get + remove + insert), because backward-shift deletion
//! re-touches a chain of random bucket lines per delete while
//! hashbrown's tombstone writes touch one. Explicit software prefetch
//! of the probed slot range fared no better — see the note on
//! `prefetch_lookup` in `array/set_assoc.rs` for that negative result.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher specialized for small keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        let mut buckets = vec![0u32; 64];
        for i in 0..64_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 700 && max < 1300, "min {min} max {max}");
    }

    #[test]
    fn byte_writes_are_consistent() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        assert_eq!(a.finish(), b.finish());
    }
}
