//! Access traces and the next-use (Belady/OPT) preprocessing pass.
//!
//! The paper's simulator is trace-driven: traces of L2 accesses are fed
//! into the cache model, and the OPT futility ranking requires each
//! access to be annotated with the time of the *next* reference to the
//! same line ("the time to their next references", Section III-A).

use crate::fxmap::FxHashMap;
use crate::ids::NO_NEXT_USE;

/// One L2 access: a line address plus the number of instructions the
/// core executed since its previous L2 access (used by the timing model).
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub struct Access {
    /// Line (block) address.
    pub addr: u64,
    /// Instructions executed between the previous access and this one.
    pub inst_gap: u32,
}

impl Access {
    /// Convenience constructor.
    pub fn new(addr: u64, inst_gap: u32) -> Self {
        Access { addr, inst_gap }
    }
}

/// A sequence of L2 accesses belonging to one thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The accesses, in program order.
    pub accesses: Vec<Access>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Build a trace from bare addresses with a constant instruction gap.
    pub fn from_addrs<I: IntoIterator<Item = u64>>(addrs: I, inst_gap: u32) -> Self {
        Trace {
            accesses: addrs
                .into_iter()
                .map(|addr| Access { addr, inst_gap })
                .collect(),
        }
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Total instructions represented by the trace.
    pub fn instructions(&self) -> u64 {
        self.accesses.iter().map(|a| a.inst_gap as u64).sum()
    }

    /// Number of distinct lines touched (the footprint, in lines).
    pub fn footprint(&self) -> usize {
        let mut seen: FxHashMap<u64, ()> =
            FxHashMap::with_capacity_and_hasher(self.len() / 4 + 1, Default::default());
        for a in &self.accesses {
            seen.insert(a.addr, ());
        }
        seen.len()
    }

    /// Belady preprocessing: for every access `i`, compute the index of
    /// the next access to the same address, or
    /// [`NO_NEXT_USE`] if the line is never
    /// again. Runs one backward scan in `O(n)`.
    ///
    /// The returned vector is parallel to `self.accesses`.
    pub fn annotate_next_use(&self) -> Vec<u64> {
        let mut next = vec![NO_NEXT_USE; self.accesses.len()];
        let mut last_seen: FxHashMap<u64, u64> =
            FxHashMap::with_capacity_and_hasher(self.len() / 4 + 1, Default::default());
        for i in (0..self.accesses.len()).rev() {
            let addr = self.accesses[i].addr;
            if let Some(&j) = last_seen.get(&addr) {
                next[i] = j;
            }
            last_seen.insert(addr, i as u64);
        }
        next
    }

    /// Iterate over `(access, next_use)` pairs, computing the annotation
    /// up front.
    pub fn iter_with_next_use(&self) -> impl Iterator<Item = (Access, u64)> + '_ {
        let next = self.annotate_next_use();
        self.accesses.iter().copied().zip(next)
    }
}

impl FromIterator<Access> for Trace {
    fn from_iter<T: IntoIterator<Item = Access>>(iter: T) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<Access> for Trace {
    fn extend<T: IntoIterator<Item = Access>>(&mut self, iter: T) {
        self.accesses.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_use_annotation_is_correct() {
        let t = Trace::from_addrs([1, 2, 1, 3, 2, 1], 10);
        let next = t.annotate_next_use();
        assert_eq!(next, vec![2, 4, 5, NO_NEXT_USE, NO_NEXT_USE, NO_NEXT_USE]);
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let t = Trace::from_addrs([5, 5, 6, 7, 6], 1);
        assert_eq!(t.footprint(), 3);
        assert_eq!(t.len(), 5);
        assert_eq!(t.instructions(), 5);
    }

    #[test]
    fn empty_trace_behaves() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert!(t.annotate_next_use().is_empty());
        assert_eq!(t.footprint(), 0);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: Trace = [Access::new(1, 2)].into_iter().collect();
        t.extend([Access::new(3, 4)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.instructions(), 6);
    }
}
