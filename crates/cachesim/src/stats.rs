//! Per-partition simulation statistics: hit/miss counters, eviction
//! futility distributions (for associativity CDFs / AEF, Section III-C)
//! and size-deviation sampling (Section IV-D).

use crate::ids::PartitionId;
use std::collections::HashMap;

/// Number of histogram bins used for eviction-futility distributions.
pub const FUTILITY_BINS: usize = 1000;

/// Statistics for one partition.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (== insertions driven by this partition).
    pub misses: u64,
    /// Lines of this partition evicted (by any partition's miss).
    pub evictions: u64,
    /// Histogram of the *true* (exact-rank) futility of evicted lines,
    /// with [`FUTILITY_BINS`] bins over `[0, 1]`.
    pub evict_futility_hist: Vec<u64>,
    /// Sum of evicted-line futilities; `sum / evictions` is the AEF.
    pub evict_futility_sum: f64,
    /// Histogram of signed size deviation (actual − target, in lines),
    /// sampled at every eviction in the cache. Only populated when
    /// [`CacheStats::deviation_histogram`] is enabled (it costs a hash
    /// map update per partition per eviction); the scalar MAD/occupancy
    /// accumulators below are always maintained.
    pub size_dev_hist: HashMap<i64, u64>,
    /// Number of size-deviation samples taken.
    pub size_dev_samples: u64,
    /// Running sum of |deviation| for the MAD.
    pub size_dev_abs_sum: f64,
    /// Running sum of actual size at each sample (for average occupancy).
    pub occupancy_sum: u64,
}

impl Default for PartitionStats {
    fn default() -> Self {
        PartitionStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            evict_futility_hist: vec![0; FUTILITY_BINS],
            evict_futility_sum: 0.0,
            size_dev_hist: HashMap::new(),
            size_dev_samples: 0,
            size_dev_abs_sum: 0.0,
            occupancy_sum: 0,
        }
    }
}

impl PartitionStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 for an untouched partition.
    pub fn miss_ratio(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses as f64 / acc as f64
        }
    }

    /// Average eviction futility (AEF): the paper's headline
    /// associativity metric. Higher is better; 1.0 is fully associative,
    /// 0.5 is the worst case (futility-blind eviction).
    pub fn aef(&self) -> f64 {
        if self.evictions == 0 {
            f64::NAN
        } else {
            self.evict_futility_sum / self.evictions as f64
        }
    }

    /// Mean absolute size deviation from target, in lines.
    pub fn size_mad(&self) -> f64 {
        if self.size_dev_samples == 0 {
            f64::NAN
        } else {
            self.size_dev_abs_sum / self.size_dev_samples as f64
        }
    }

    /// Average occupancy (lines) over all deviation samples.
    pub fn avg_occupancy(&self) -> f64 {
        if self.size_dev_samples == 0 {
            f64::NAN
        } else {
            self.occupancy_sum as f64 / self.size_dev_samples as f64
        }
    }

    /// The associativity CDF: cumulative probability that an evicted
    /// line's futility is ≤ x, evaluated at each bin edge. Returns
    /// `(x, cdf(x))` pairs.
    pub fn associativity_cdf(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.evict_futility_hist.iter().sum();
        let mut out = Vec::with_capacity(FUTILITY_BINS);
        let mut acc = 0u64;
        for (i, &c) in self.evict_futility_hist.iter().enumerate() {
            acc += c;
            let x = (i + 1) as f64 / FUTILITY_BINS as f64;
            let y = if total == 0 {
                0.0
            } else {
                acc as f64 / total as f64
            };
            out.push((x, y));
        }
        out
    }

    /// The size-deviation CDF as sorted `(deviation, cum_prob)` pairs.
    pub fn size_deviation_cdf(&self) -> Vec<(i64, f64)> {
        let mut keys: Vec<i64> = self.size_dev_hist.keys().copied().collect();
        keys.sort_unstable();
        let total: u64 = self.size_dev_hist.values().sum();
        let mut acc = 0u64;
        keys.into_iter()
            .map(|k| {
                acc += self.size_dev_hist[&k];
                (k, acc as f64 / total.max(1) as f64)
            })
            .collect()
    }
}

/// Statistics for a whole [`PartitionedCache`](crate::PartitionedCache).
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    parts: Vec<PartitionStats>,
    /// Whether to sample per-partition size deviation at every eviction.
    /// On by default; turn off for pure-throughput benchmarking.
    pub sample_deviation: bool,
    /// Whether deviation samples also populate the full per-partition
    /// histogram (needed for deviation CDFs, e.g. Figure 5). Off by
    /// default — it costs a hash-map update per partition per eviction.
    pub deviation_histogram: bool,
}

impl CacheStats {
    /// Stats for `pools` pools.
    pub fn new(pools: usize) -> Self {
        CacheStats {
            parts: (0..pools).map(|_| PartitionStats::default()).collect(),
            sample_deviation: true,
            deviation_histogram: false,
        }
    }

    /// Per-partition stats, indexable by `PartitionId::index()`.
    pub fn partition(&self, part: PartitionId) -> &PartitionStats {
        &self.parts[part.index()]
    }

    /// All per-partition stats.
    pub fn partitions(&self) -> &[PartitionStats] {
        &self.parts
    }

    /// Record a hit for `part`.
    pub(crate) fn record_hit(&mut self, part: PartitionId) {
        self.parts[part.index()].hits += 1;
    }

    /// Record a miss for `part`.
    pub(crate) fn record_miss(&mut self, part: PartitionId) {
        self.parts[part.index()].misses += 1;
    }

    /// Record the eviction of a line of `part` with true futility `f`.
    pub(crate) fn record_eviction(&mut self, part: PartitionId, futility: f64) {
        let p = &mut self.parts[part.index()];
        p.evictions += 1;
        p.evict_futility_sum += futility;
        let bin = ((futility * FUTILITY_BINS as f64) as usize).min(FUTILITY_BINS - 1);
        p.evict_futility_hist[bin] += 1;
    }

    /// Sample size deviations for every pool.
    pub(crate) fn sample_deviations(&mut self, actual: &[usize], targets: &[usize]) {
        if !self.sample_deviation {
            return;
        }
        let with_hist = self.deviation_histogram;
        for i in 0..self.parts.len().min(actual.len()) {
            let dev = actual[i] as i64 - targets[i] as i64;
            let p = &mut self.parts[i];
            if with_hist {
                *p.size_dev_hist.entry(dev).or_insert(0) += 1;
            }
            p.size_dev_samples += 1;
            p.size_dev_abs_sum += dev.unsigned_abs() as f64;
            p.occupancy_sum += actual[i] as u64;
        }
    }

    /// Total misses across all partitions.
    pub fn total_misses(&self) -> u64 {
        self.parts.iter().map(|p| p.misses).sum()
    }

    /// Total hits across all partitions.
    pub fn total_hits(&self) -> u64 {
        self.parts.iter().map(|p| p.hits).sum()
    }

    /// Reset all counters, keeping the pool count. Useful after warmup.
    pub fn reset(&mut self) {
        let n = self.parts.len();
        let sample = self.sample_deviation;
        let hist = self.deviation_histogram;
        *self = CacheStats::new(n);
        self.sample_deviation = sample;
        self.deviation_histogram = hist;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aef_is_mean_of_evicted_futility() {
        let mut s = CacheStats::new(1);
        s.record_eviction(PartitionId(0), 0.5);
        s.record_eviction(PartitionId(0), 1.0);
        let p = s.partition(PartitionId(0));
        assert!((p.aef() - 0.75).abs() < 1e-12);
        assert_eq!(p.evictions, 2);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut s = CacheStats::new(1);
        for f in [0.1, 0.2, 0.9, 0.95, 1.0] {
            s.record_eviction(PartitionId(0), f);
        }
        let cdf = s.partition(PartitionId(0)).associativity_cdf();
        let mut prev = 0.0;
        for &(_, y) in &cdf {
            assert!(y >= prev);
            prev = y;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_sampling_tracks_mad() {
        let mut s = CacheStats::new(2);
        s.deviation_histogram = true;
        s.sample_deviations(&[12, 8], &[10, 10]);
        s.sample_deviations(&[10, 10], &[10, 10]);
        let p0 = s.partition(PartitionId(0));
        assert_eq!(p0.size_dev_samples, 2);
        assert!((p0.size_mad() - 1.0).abs() < 1e-12);
        assert!((p0.avg_occupancy() - 11.0).abs() < 1e-12);
        let cdf = s.partition(PartitionId(1)).size_deviation_cdf();
        assert_eq!(cdf, vec![(-2, 0.5), (0, 1.0)]);
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut s = CacheStats::new(1);
        s.record_hit(PartitionId(0));
        s.record_miss(PartitionId(0));
        assert!((s.partition(PartitionId(0)).miss_ratio() - 0.5).abs() < 1e-12);
        s.reset();
        assert_eq!(s.total_misses() + s.total_hits(), 0);
    }

    #[test]
    fn futility_one_lands_in_last_bin() {
        let mut s = CacheStats::new(1);
        s.record_eviction(PartitionId(0), 1.0);
        let h = &s.partition(PartitionId(0)).evict_futility_hist;
        assert_eq!(h[FUTILITY_BINS - 1], 1);
    }
}
