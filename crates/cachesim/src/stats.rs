//! Per-partition simulation statistics: hit/miss counters, eviction
//! futility distributions (for associativity CDFs / AEF, Section III-C)
//! and size-deviation sampling (Section IV-D).

use crate::ids::PartitionId;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::HashMap;

/// Number of histogram bins used for eviction-futility distributions.
pub const FUTILITY_BINS: usize = 1000;

/// Statistics for one partition.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (== insertions driven by this partition).
    pub misses: u64,
    /// Lines of this partition evicted (by any partition's miss).
    pub evictions: u64,
    /// Histogram of the *true* (exact-rank) futility of evicted lines,
    /// with [`FUTILITY_BINS`] bins over `[0, 1]`. Lazily allocated, and
    /// only populated when [`CacheStats::futility_histogram`] is set
    /// (needed for associativity CDFs, e.g. Figures 2/4); the AEF sum
    /// is always maintained. Empty means "no histogram recorded".
    pub evict_futility_hist: Vec<u64>,
    /// Sum of evicted-line futilities; `sum / evictions` is the AEF.
    pub evict_futility_sum: f64,
    /// Histogram of signed size deviation (actual − target, in lines),
    /// sampled at every eviction in the cache. Only populated when
    /// [`CacheStats::deviation_histogram`] is enabled (it costs a hash
    /// map update per partition per eviction); the scalar MAD/occupancy
    /// accounting is always maintained — incrementally — and read via
    /// [`CacheStats::size_mad`] / [`CacheStats::avg_occupancy`].
    pub size_dev_hist: HashMap<i64, u64>,
    /// Flushed size-deviation sample count (see `update_occupancy`).
    size_dev_samples: u64,
    /// Flushed sum of |deviation| for the MAD.
    size_dev_abs_sum: f64,
    /// Flushed sum of actual size at each sample (average occupancy).
    occupancy_sum: u64,
    /// Current signed deviation (actual − target), maintained O(1) at
    /// every occupancy change; multiplied into the flushed sums lazily.
    cur_dev: i64,
    /// Current actual size, paired with `cur_dev`.
    cur_actual: u64,
    /// Value of the global sample counter when this partition's sums
    /// were last flushed; `global − flushed_at` samples at `cur_dev`
    /// are still pending.
    flushed_at: u64,
}

impl Default for PartitionStats {
    fn default() -> Self {
        PartitionStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            evict_futility_hist: Vec::new(),
            evict_futility_sum: 0.0,
            size_dev_hist: HashMap::new(),
            size_dev_samples: 0,
            size_dev_abs_sum: 0.0,
            occupancy_sum: 0,
            cur_dev: 0,
            cur_actual: 0,
            flushed_at: 0,
        }
    }
}

impl PartitionStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 for an untouched partition.
    pub fn miss_ratio(&self) -> f64 {
        let acc = self.accesses();
        if acc == 0 {
            0.0
        } else {
            self.misses as f64 / acc as f64
        }
    }

    /// Average eviction futility (AEF): the paper's headline
    /// associativity metric. Higher is better; 1.0 is fully associative,
    /// 0.5 is the worst case (futility-blind eviction).
    pub fn aef(&self) -> f64 {
        if self.evictions == 0 {
            f64::NAN
        } else {
            self.evict_futility_sum / self.evictions as f64
        }
    }

    /// The associativity CDF: cumulative probability that an evicted
    /// line's futility is ≤ x, evaluated at each bin edge. Returns
    /// `(x, cdf(x))` pairs.
    pub fn associativity_cdf(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.evict_futility_hist.iter().sum();
        let mut out = Vec::with_capacity(FUTILITY_BINS);
        let mut acc = 0u64;
        // The histogram is lazily allocated: an empty vector (histogram
        // never enabled, or no evictions yet) yields an all-zero CDF of
        // the usual shape rather than an empty one.
        for i in 0..FUTILITY_BINS {
            acc += self.evict_futility_hist.get(i).copied().unwrap_or(0);
            let x = (i + 1) as f64 / FUTILITY_BINS as f64;
            let y = if total == 0 {
                0.0
            } else {
                acc as f64 / total as f64
            };
            out.push((x, y));
        }
        out
    }

    /// The size-deviation CDF as sorted `(deviation, cum_prob)` pairs.
    pub fn size_deviation_cdf(&self) -> Vec<(i64, f64)> {
        let mut keys: Vec<i64> = self.size_dev_hist.keys().copied().collect();
        keys.sort_unstable();
        let total: u64 = self.size_dev_hist.values().sum();
        let mut acc = 0u64;
        keys.into_iter()
            .map(|k| {
                acc += self.size_dev_hist[&k];
                (k, acc as f64 / total.max(1) as f64)
            })
            .collect()
    }
}

/// Statistics for a whole [`PartitionedCache`](crate::PartitionedCache).
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    parts: Vec<PartitionStats>,
    /// Whether to sample per-partition size deviation at every eviction.
    /// On by default; turn off for pure-throughput benchmarking.
    pub sample_deviation: bool,
    /// Whether deviation samples also populate the full per-partition
    /// histogram (needed for deviation CDFs, e.g. Figure 5). Off by
    /// default — it costs a hash-map update per partition per eviction;
    /// without it, sampling is a single counter bump (the per-partition
    /// sums are folded in lazily from each partition's current
    /// deviation, which changes only when its occupancy does).
    pub deviation_histogram: bool,
    /// Whether evictions also populate the per-partition
    /// [`evict_futility_hist`](PartitionStats::evict_futility_hist)
    /// (needed for associativity CDFs). Off by default — the 1000-bin
    /// vector per pool is only allocated (lazily) when this is set, so
    /// throughput runs and figure bins that never read the CDF pay
    /// neither the memory nor the per-eviction bin update.
    pub futility_histogram: bool,
    /// Global lazy sample counter: number of deviation ticks taken in
    /// counter-only (no-histogram) mode.
    dev_samples: u64,
    /// Bumped by every [`reset`](Self::reset): lets an attached recorder
    /// notice that its interval baselines refer to discarded counters
    /// (e.g. a post-warmup reset) and rebaseline instead of underflowing.
    generation: u64,
    /// Pools `0..sampled_parts` take part in deviation sampling (the
    /// engine sets this to its application-partition count; scheme
    /// pools report NaN, exactly as under eager sampling).
    pub(crate) sampled_parts: usize,
}

impl CacheStats {
    /// Stats for `pools` pools.
    pub fn new(pools: usize) -> Self {
        CacheStats {
            parts: (0..pools).map(|_| PartitionStats::default()).collect(),
            sample_deviation: true,
            deviation_histogram: false,
            futility_histogram: false,
            dev_samples: 0,
            generation: 0,
            sampled_parts: pools,
        }
    }

    /// Reset generation: incremented by every [`reset`](Self::reset).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-partition stats, indexable by `PartitionId::index()`.
    pub fn partition(&self, part: PartitionId) -> &PartitionStats {
        &self.parts[part.index()]
    }

    /// All per-partition stats.
    pub fn partitions(&self) -> &[PartitionStats] {
        &self.parts
    }

    /// Record a hit for `part`.
    pub(crate) fn record_hit(&mut self, part: PartitionId) {
        self.parts[part.index()].hits += 1;
    }

    /// Record a miss for `part`.
    pub(crate) fn record_miss(&mut self, part: PartitionId) {
        self.parts[part.index()].misses += 1;
    }

    /// Record the eviction of a line of `part` with true futility `f`.
    /// Public so out-of-crate arrays/tests can feed stats directly; the
    /// engine calls it on every replacement.
    pub fn record_eviction(&mut self, part: PartitionId, futility: f64) {
        let p = &mut self.parts[part.index()];
        p.evictions += 1;
        p.evict_futility_sum += futility;
        if self.futility_histogram {
            if p.evict_futility_hist.is_empty() {
                p.evict_futility_hist = vec![0; FUTILITY_BINS];
            }
            let bin = ((futility * FUTILITY_BINS as f64) as usize).min(FUTILITY_BINS - 1);
            p.evict_futility_hist[bin] += 1;
        }
    }

    /// Sample size deviations for every pool.
    pub(crate) fn sample_deviations(&mut self, actual: &[usize], targets: &[usize]) {
        if !self.sample_deviation {
            return;
        }
        let with_hist = self.deviation_histogram;
        for i in 0..self.parts.len().min(actual.len()) {
            let dev = actual[i] as i64 - targets[i] as i64;
            let p = &mut self.parts[i];
            if with_hist {
                *p.size_dev_hist.entry(dev).or_insert(0) += 1;
            }
            p.size_dev_samples += 1;
            p.size_dev_abs_sum += dev.unsigned_abs() as f64;
            p.occupancy_sum += actual[i] as u64;
        }
    }

    /// One deviation sample across all sampled pools, O(1) in the
    /// common case: with the histogram enabled this is the eager
    /// per-partition scan ([`sample_deviations`](Self::sample_deviations)),
    /// otherwise it only bumps the global counter — each partition's
    /// pending samples are folded into its sums by
    /// [`update_occupancy`](Self::update_occupancy) the next time its
    /// occupancy (or target) changes, and by the read accessors.
    pub(crate) fn sample_deviation_tick(&mut self, actual: &[usize], targets: &[usize]) {
        if !self.sample_deviation {
            return;
        }
        if self.deviation_histogram {
            self.sample_deviations(actual, targets);
        } else {
            self.dev_samples += 1;
        }
    }

    /// Record that partition `idx` now holds `actual` lines against
    /// `target`: flush its pending lazy samples at the *old* deviation,
    /// then switch to the new one. Call after every occupancy or target
    /// change of a sampled partition.
    ///
    /// Exactness: all pending samples happened while the deviation was
    /// `cur_dev`, so `|cur_dev| * pending` equals the eager loop's
    /// repeated additions — and since every quantity is an integer well
    /// below 2^53, the f64 arithmetic is exact and the two accountings
    /// are bitwise identical.
    pub(crate) fn update_occupancy(&mut self, idx: usize, actual: usize, target: usize) {
        let p = &mut self.parts[idx];
        let pending = self.dev_samples - p.flushed_at;
        if pending > 0 {
            p.size_dev_samples += pending;
            p.size_dev_abs_sum += (p.cur_dev.unsigned_abs() * pending) as f64;
            p.occupancy_sum += p.cur_actual * pending;
            p.flushed_at = self.dev_samples;
        }
        p.cur_dev = actual as i64 - target as i64;
        p.cur_actual = actual as u64;
    }

    /// Effective `(samples, |dev| sum, occupancy sum)` for pool `idx`,
    /// including samples not yet flushed into the partition.
    fn deviation_sums(&self, idx: usize) -> (u64, f64, u64) {
        let p = &self.parts[idx];
        let mut samples = p.size_dev_samples;
        let mut abs_sum = p.size_dev_abs_sum;
        let mut occ_sum = p.occupancy_sum;
        if idx < self.sampled_parts {
            let pending = self.dev_samples - p.flushed_at;
            samples += pending;
            abs_sum += (p.cur_dev.unsigned_abs() * pending) as f64;
            occ_sum += p.cur_actual * pending;
        }
        (samples, abs_sum, occ_sum)
    }

    /// Mean absolute size deviation from target (lines) for `part`;
    /// NaN if the pool was never sampled.
    pub fn size_mad(&self, part: PartitionId) -> f64 {
        let (samples, abs_sum, _) = self.deviation_sums(part.index());
        if samples == 0 {
            f64::NAN
        } else {
            abs_sum / samples as f64
        }
    }

    /// Average occupancy (lines) of `part` over all deviation samples;
    /// NaN if the pool was never sampled.
    pub fn avg_occupancy(&self, part: PartitionId) -> f64 {
        let (samples, _, occ_sum) = self.deviation_sums(part.index());
        if samples == 0 {
            f64::NAN
        } else {
            occ_sum as f64 / samples as f64
        }
    }

    /// Number of deviation samples taken for `part`.
    pub fn size_dev_samples(&self, part: PartitionId) -> u64 {
        self.deviation_sums(part.index()).0
    }

    /// Total misses across all partitions.
    pub fn total_misses(&self) -> u64 {
        self.parts.iter().map(|p| p.misses).sum()
    }

    /// Total hits across all partitions.
    pub fn total_hits(&self) -> u64 {
        self.parts.iter().map(|p| p.hits).sum()
    }

    /// Fold another stats block (tracking the same number of pools)
    /// into this one, pool by pool: counters, futility sums and
    /// histograms add; deviation sampling folds `other`'s *effective*
    /// sums (flushed + pending) into this block's flushed fields, so
    /// the merged MAD / average occupancy are the sample-weighted
    /// aggregates. Used by
    /// [`ShardedEngine::merged_stats`](crate::ShardedEngine::merged_stats);
    /// the result is a read-only aggregate — its lazy accounting is not
    /// set up to take further live samples.
    ///
    /// # Panics
    /// Panics if the pool counts differ.
    pub fn merge_from(&mut self, other: &CacheStats) {
        assert_eq!(
            self.parts.len(),
            other.parts.len(),
            "cannot merge stats with different pool counts"
        );
        for idx in 0..self.parts.len() {
            let (samples, abs_sum, occ_sum) = other.deviation_sums(idx);
            let (d, s) = (&mut self.parts[idx], &other.parts[idx]);
            d.hits += s.hits;
            d.misses += s.misses;
            d.evictions += s.evictions;
            d.evict_futility_sum += s.evict_futility_sum;
            if !s.evict_futility_hist.is_empty() {
                if d.evict_futility_hist.is_empty() {
                    d.evict_futility_hist = vec![0; FUTILITY_BINS];
                }
                for (db, &sb) in d.evict_futility_hist.iter_mut().zip(&s.evict_futility_hist) {
                    *db += sb;
                }
            }
            for (&k, &v) in &s.size_dev_hist {
                *d.size_dev_hist.entry(k).or_insert(0) += v;
            }
            d.size_dev_samples += samples;
            d.size_dev_abs_sum += abs_sum;
            d.occupancy_sum += occ_sum;
        }
    }

    /// Serialize all statistics — counters, histograms, the lazy
    /// deviation-accounting fields and the reset generation — for
    /// checkpointing (DESIGN.md §11). Hash-backed histograms are
    /// written sorted by key, so snapshot bytes are deterministic.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("stats");
        w.bool(self.sample_deviation);
        w.bool(self.deviation_histogram);
        w.bool(self.futility_histogram);
        w.u64(self.dev_samples);
        w.u64(self.generation);
        w.usize(self.sampled_parts);
        w.usize(self.parts.len());
        for p in &self.parts {
            w.u64(p.hits);
            w.u64(p.misses);
            w.u64(p.evictions);
            w.f64(p.evict_futility_sum);
            w.usize(p.evict_futility_hist.len());
            for &bin in &p.evict_futility_hist {
                w.u64(bin);
            }
            let mut devs: Vec<(i64, u64)> = p.size_dev_hist.iter().map(|(&k, &v)| (k, v)).collect();
            devs.sort_unstable();
            w.usize(devs.len());
            for (k, v) in devs {
                w.i64(k);
                w.u64(v);
            }
            w.u64(p.size_dev_samples);
            w.f64(p.size_dev_abs_sum);
            w.u64(p.occupancy_sum);
            w.i64(p.cur_dev);
            w.u64(p.cur_actual);
            w.u64(p.flushed_at);
        }
        w.end();
    }

    /// Restore statistics saved by [`save_state`](Self::save_state)
    /// into a stats block tracking the same number of pools.
    ///
    /// # Errors
    /// [`SnapshotError`] on decode failure or a pool-count mismatch.
    pub fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("stats")?;
        let sample_deviation = r.bool()?;
        let deviation_histogram = r.bool()?;
        let futility_histogram = r.bool()?;
        let dev_samples = r.u64()?;
        let generation = r.u64()?;
        let sampled_parts = r.usize()?;
        let n = r.seq_len(8)?;
        if n != self.parts.len() {
            return Err(SnapshotError::mismatch(format!(
                "stats track {} pools, snapshot has {n}",
                self.parts.len()
            )));
        }
        let mut parts = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p = PartitionStats {
                hits: r.u64()?,
                misses: r.u64()?,
                evictions: r.u64()?,
                evict_futility_sum: r.f64()?,
                ..PartitionStats::default()
            };
            let bins = r.seq_len(8)?;
            if bins != 0 && bins != FUTILITY_BINS {
                return Err(SnapshotError::corrupt(format!(
                    "futility histogram has {bins} bins, expected 0 or {FUTILITY_BINS}"
                )));
            }
            p.evict_futility_hist = (0..bins).map(|_| r.u64()).collect::<Result<_, _>>()?;
            let devs = r.seq_len(16)?;
            p.size_dev_hist.reserve(devs);
            for _ in 0..devs {
                let k = r.i64()?;
                let v = r.u64()?;
                if p.size_dev_hist.insert(k, v).is_some() {
                    return Err(SnapshotError::corrupt(
                        "duplicate key in size-deviation histogram",
                    ));
                }
            }
            p.size_dev_samples = r.u64()?;
            p.size_dev_abs_sum = r.f64()?;
            p.occupancy_sum = r.u64()?;
            p.cur_dev = r.i64()?;
            p.cur_actual = r.u64()?;
            p.flushed_at = r.u64()?;
            parts.push(p);
        }
        r.end()?;
        self.parts = parts;
        self.sample_deviation = sample_deviation;
        self.deviation_histogram = deviation_histogram;
        self.futility_histogram = futility_histogram;
        self.dev_samples = dev_samples;
        self.generation = generation;
        self.sampled_parts = sampled_parts;
        Ok(())
    }

    /// Reset all counters, keeping the pool count. Useful after warmup.
    pub fn reset(&mut self) {
        self.dev_samples = 0;
        self.generation += 1;
        for p in &mut self.parts {
            // `cur_dev`/`cur_actual` mirror the cache's live occupancy,
            // which a stats reset does not change — only the
            // accumulated samples are discarded.
            let (cur_dev, cur_actual) = (p.cur_dev, p.cur_actual);
            *p = PartitionStats::default();
            p.cur_dev = cur_dev;
            p.cur_actual = cur_actual;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aef_is_mean_of_evicted_futility() {
        let mut s = CacheStats::new(1);
        s.record_eviction(PartitionId(0), 0.5);
        s.record_eviction(PartitionId(0), 1.0);
        let p = s.partition(PartitionId(0));
        assert!((p.aef() - 0.75).abs() < 1e-12);
        assert_eq!(p.evictions, 2);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let mut s = CacheStats::new(1);
        s.futility_histogram = true;
        for f in [0.1, 0.2, 0.9, 0.95, 1.0] {
            s.record_eviction(PartitionId(0), f);
        }
        let cdf = s.partition(PartitionId(0)).associativity_cdf();
        let mut prev = 0.0;
        for &(_, y) in &cdf {
            assert!(y >= prev);
            prev = y;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_sampling_tracks_mad() {
        let mut s = CacheStats::new(2);
        s.deviation_histogram = true;
        s.sample_deviations(&[12, 8], &[10, 10]);
        s.sample_deviations(&[10, 10], &[10, 10]);
        assert_eq!(s.size_dev_samples(PartitionId(0)), 2);
        assert!((s.size_mad(PartitionId(0)) - 1.0).abs() < 1e-12);
        assert!((s.avg_occupancy(PartitionId(0)) - 11.0).abs() < 1e-12);
        let cdf = s.partition(PartitionId(1)).size_deviation_cdf();
        assert_eq!(cdf, vec![(-2, 0.5), (0, 1.0)]);
    }

    #[test]
    fn lazy_deviation_accounting_matches_eager() {
        // Drive the same occupancy history through the eager
        // (histogram) path and the lazy (counter + flush) path; every
        // derived statistic must agree bitwise.
        let history: &[(usize, usize)] = &[(0, 10), (5, 10), (12, 10), (12, 8), (7, 8), (7, 8)];
        let targets_of = |t: usize| [t, 3usize];

        let mut eager = CacheStats::new(2);
        eager.deviation_histogram = true;
        let mut lazy = CacheStats::new(2);

        // Both start with a known occupancy (as the engine does in new()).
        eager.update_occupancy(0, 0, 10);
        eager.update_occupancy(1, 2, 3);
        lazy.update_occupancy(0, 0, 10);
        lazy.update_occupancy(1, 2, 3);

        for &(actual, target) in history {
            let targets = targets_of(target);
            eager.update_occupancy(0, actual, target);
            lazy.update_occupancy(0, actual, target);
            // Several ticks between occupancy changes, like a run of
            // evictions that all land in pool 1.
            for _ in 0..3 {
                eager.sample_deviation_tick(&[actual, 2], &targets);
                lazy.sample_deviation_tick(&[actual, 2], &targets);
            }
        }

        for p in [PartitionId(0), PartitionId(1)] {
            assert_eq!(eager.size_dev_samples(p), lazy.size_dev_samples(p));
            assert_eq!(eager.size_mad(p).to_bits(), lazy.size_mad(p).to_bits());
            assert_eq!(
                eager.avg_occupancy(p).to_bits(),
                lazy.avg_occupancy(p).to_bits()
            );
        }
        assert_eq!(lazy.size_dev_samples(PartitionId(0)), 18);
        assert!((lazy.avg_occupancy(PartitionId(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_samples_but_keeps_live_occupancy() {
        let mut s = CacheStats::new(1);
        s.update_occupancy(0, 7, 10);
        s.sample_deviation_tick(&[7], &[10]);
        s.sample_deviation_tick(&[7], &[10]);
        assert_eq!(s.size_dev_samples(PartitionId(0)), 2);
        s.reset();
        assert_eq!(s.size_dev_samples(PartitionId(0)), 0);
        assert!(s.size_mad(PartitionId(0)).is_nan());
        // The live deviation survives the reset: new samples pick it up.
        s.sample_deviation_tick(&[7], &[10]);
        assert!((s.size_mad(PartitionId(0)) - 3.0).abs() < 1e-12);
        assert!((s.avg_occupancy(PartitionId(0)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut s = CacheStats::new(1);
        s.record_hit(PartitionId(0));
        s.record_miss(PartitionId(0));
        assert!((s.partition(PartitionId(0)).miss_ratio() - 0.5).abs() < 1e-12);
        s.reset();
        assert_eq!(s.total_misses() + s.total_hits(), 0);
    }

    #[test]
    fn futility_one_lands_in_last_bin() {
        let mut s = CacheStats::new(1);
        s.futility_histogram = true;
        s.record_eviction(PartitionId(0), 1.0);
        let h = &s.partition(PartitionId(0)).evict_futility_hist;
        assert_eq!(h[FUTILITY_BINS - 1], 1);
    }

    #[test]
    fn futility_histogram_is_lazy_and_opt_in() {
        // Off (the default): evictions keep the AEF exact but never
        // allocate the 1000-bin histogram.
        let mut s = CacheStats::new(1);
        s.record_eviction(PartitionId(0), 0.25);
        let p = s.partition(PartitionId(0));
        assert!(p.evict_futility_hist.is_empty());
        assert!((p.aef() - 0.25).abs() < 1e-12);
        // The CDF still has its usual shape, just all-zero mass.
        let cdf = p.associativity_cdf();
        assert_eq!(cdf.len(), FUTILITY_BINS);
        assert!(cdf.iter().all(|&(_, y)| y == 0.0));
        // On: the first recorded eviction allocates and bins.
        s.futility_histogram = true;
        s.record_eviction(PartitionId(0), 0.25);
        let p = s.partition(PartitionId(0));
        assert_eq!(p.evict_futility_hist.len(), FUTILITY_BINS);
        assert_eq!(p.evict_futility_hist.iter().sum::<u64>(), 1);
    }

    #[test]
    fn merge_folds_counters_and_effective_deviation_sums() {
        // Shard A: lazy accounting with pending (unflushed) samples;
        // shard B: eager histogram accounting. The merge must see A's
        // effective sums (incl. pending) and B's histogram.
        let mut a = CacheStats::new(2);
        a.record_hit(PartitionId(0));
        a.record_miss(PartitionId(0));
        a.record_eviction(PartitionId(0), 0.5);
        a.update_occupancy(0, 12, 10);
        a.sample_deviation_tick(&[12, 0], &[10, 0]);
        a.sample_deviation_tick(&[12, 0], &[10, 0]);

        let mut b = CacheStats::new(2);
        b.deviation_histogram = true;
        b.record_hit(PartitionId(1));
        b.record_eviction(PartitionId(0), 1.0);
        b.sample_deviations(&[9, 4], &[10, 4]);

        let mut m = CacheStats::new(2);
        m.merge_from(&a);
        m.merge_from(&b);
        assert_eq!(m.total_hits(), 2);
        assert_eq!(m.total_misses(), 1);
        let p0 = m.partition(PartitionId(0));
        assert_eq!(p0.evictions, 2);
        assert!((p0.aef() - 0.75).abs() < 1e-12);
        // A contributes 2 samples at |dev|=2 (pending only), B one at 1.
        assert_eq!(m.size_dev_samples(PartitionId(0)), 3);
        assert!((m.size_mad(PartitionId(0)) - 5.0 / 3.0).abs() < 1e-12);
        assert!((m.avg_occupancy(PartitionId(0)) - 11.0).abs() < 1e-12);
        assert_eq!(m.partition(PartitionId(0)).size_dev_hist[&-1], 1);
    }

    #[test]
    #[should_panic(expected = "different pool counts")]
    fn merge_rejects_pool_count_mismatch() {
        let mut a = CacheStats::new(2);
        a.merge_from(&CacheStats::new(3));
    }

    #[test]
    fn reset_bumps_generation() {
        let mut s = CacheStats::new(1);
        assert_eq!(s.generation(), 0);
        s.reset();
        s.reset();
        assert_eq!(s.generation(), 2);
    }
}
