//! Versioned, checksummed snapshot serialization for deterministic
//! checkpoint/resume (DESIGN.md §11).
//!
//! A snapshot is a flat byte buffer: a fixed header (magic, format
//! version, payload length), the payload, and a trailing FNV-1a
//! integrity checksum over the payload. Inside the payload every
//! component writes one *section* — a name tag plus a length-prefixed
//! body — so a reader can verify it is decoding the component it
//! expects and that the component consumed exactly the bytes it wrote.
//! All integers are little-endian; floats are stored as their IEEE-754
//! bit patterns, so restore is bit-exact.
//!
//! Corrupted input (truncation, bit flips, version skew, component
//! mismatch) always surfaces as a descriptive [`SnapshotError`]; the
//! reader never panics and never silently misloads
//! (`tests/snapshot_corruption.rs`).

use std::fmt;

/// Current snapshot format version. Bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 4] = *b"FSSN";

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the expected data (truncated file).
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// The leading magic bytes are wrong — not a snapshot file.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The payload checksum does not match (bit rot / partial write).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The snapshot is structurally valid but describes a different
    /// configuration than the engine it is being restored into.
    Mismatch {
        /// Human-readable description of the disagreement.
        context: String,
    },
    /// A decoded value is out of range or internally inconsistent.
    Corrupt {
        /// Human-readable description of the bad value.
        context: String,
    },
}

impl SnapshotError {
    /// A [`SnapshotError::Truncated`] with context.
    pub fn truncated(context: impl Into<String>) -> Self {
        SnapshotError::Truncated {
            context: context.into(),
        }
    }

    /// A [`SnapshotError::Mismatch`] with context.
    pub fn mismatch(context: impl Into<String>) -> Self {
        SnapshotError::Mismatch {
            context: context.into(),
        }
    }

    /// A [`SnapshotError::Corrupt`] with context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        SnapshotError::Corrupt {
            context: context.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Mismatch { context } => {
                write!(f, "snapshot does not match this engine: {context}")
            }
            SnapshotError::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over a byte slice (same family as
/// [`prng::seed_for`](crate::prng::seed_for)'s name hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds a snapshot buffer: primitives, strings and named
/// length-prefixed sections. [`finish`](SnapshotWriter::finish) seals
/// the buffer with the header and checksum.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Offsets of the length placeholders of currently open sections.
    open: Vec<usize>,
}

impl SnapshotWriter {
    /// Start an empty snapshot.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize (stored as u64).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an f64 as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a bool (one byte).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed opaque byte blob — e.g. a complete
    /// nested snapshot stream embedded in a larger container file.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Open a named section: the name tag plus a length placeholder
    /// patched by the matching [`end`](SnapshotWriter::end).
    pub fn begin(&mut self, name: &str) {
        self.str(name);
        self.open.push(self.buf.len());
        self.u64(0); // placeholder body length
    }

    /// Close the innermost open section.
    ///
    /// # Panics
    /// Panics if no section is open (writer bug, not input-dependent).
    pub fn end(&mut self) {
        let at = self.open.pop().expect("SnapshotWriter::end without begin");
        let body = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&body.to_le_bytes());
    }

    /// Seal the snapshot: header, payload, trailing checksum.
    ///
    /// # Panics
    /// Panics if a section is still open (writer bug).
    pub fn finish(self) -> Vec<u8> {
        assert!(self.open.is_empty(), "unclosed snapshot section");
        let mut out = Vec::with_capacity(self.buf.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&fnv1a(&self.buf).to_le_bytes());
        out
    }
}

/// Decodes a snapshot produced by [`SnapshotWriter`]. Construction
/// ([`open`](SnapshotReader::open)) validates the header and checksum;
/// every read returns a descriptive error instead of panicking on bad
/// input.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
    /// End offsets of currently open sections.
    ends: Vec<usize>,
}

impl<'a> SnapshotReader<'a> {
    /// Validate header + checksum and position the reader at the start
    /// of the payload.
    ///
    /// # Errors
    /// [`SnapshotError`] on truncation, bad magic, version skew or a
    /// checksum mismatch.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::truncated("header"));
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let Some(total) = len.checked_add(24) else {
            return Err(SnapshotError::corrupt("payload length overflows"));
        };
        if bytes.len() < total {
            return Err(SnapshotError::truncated("payload"));
        }
        let payload = &bytes[16..16 + len];
        let stored = u64::from_le_bytes(bytes[16 + len..24 + len].try_into().expect("8 bytes"));
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        Ok(SnapshotReader {
            payload,
            pos: 0,
            ends: Vec::new(),
        })
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or_else(|| SnapshotError::truncated(context))?;
        if let Some(&section_end) = self.ends.last() {
            if end > section_end {
                return Err(SnapshotError::corrupt(format!(
                    "{context} reads past its section boundary"
                )));
            }
        }
        let bytes = &self.payload[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2, "u16")?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, "u32")?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, "u64")?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// Read a usize (stored as u64).
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] if the value does not fit a usize.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::corrupt("usize value out of range"))
    }

    /// Read an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] on any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::corrupt(format!(
                "bool byte must be 0 or 1, got {other}"
            ))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string body")?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::corrupt("string is not UTF-8"))
    }

    /// Read a length-prefixed byte blob written by
    /// [`SnapshotWriter::bytes`].
    ///
    /// # Errors
    /// [`SnapshotError`] on truncation or an implausible length.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.seq_len(1)?;
        self.take(len, "byte blob")
    }

    /// Read a sequence length, bounds-checked against the bytes that
    /// could possibly back it (each element needs at least
    /// `min_elem_bytes`). Prevents a corrupt length from driving a
    /// huge allocation.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] if the length is implausible.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        let remaining = self.payload.len() - self.pos;
        if len.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(SnapshotError::corrupt(format!(
                "sequence length {len} exceeds remaining snapshot bytes"
            )));
        }
        Ok(len)
    }

    /// Enter a named section, verifying the tag.
    ///
    /// # Errors
    /// [`SnapshotError::Mismatch`] if the next section is not `name`.
    pub fn begin(&mut self, name: &str) -> Result<(), SnapshotError> {
        let found = self.str()?;
        if found != name {
            return Err(SnapshotError::mismatch(format!(
                "expected section `{name}`, found `{found}`"
            )));
        }
        let body = self.usize()?;
        let end = self
            .pos
            .checked_add(body)
            .filter(|&e| e <= self.payload.len())
            .ok_or_else(|| SnapshotError::truncated(format!("section `{name}` body")))?;
        self.ends.push(end);
        Ok(())
    }

    /// Leave the innermost section, verifying it was fully consumed.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] if bytes remain unread in the
    /// section (layout disagreement between writer and reader).
    pub fn end(&mut self) -> Result<(), SnapshotError> {
        let end = self
            .ends
            .pop()
            .ok_or_else(|| SnapshotError::corrupt("section end without begin"))?;
        if self.pos != end {
            return Err(SnapshotError::corrupt(format!(
                "section not fully consumed: {} bytes left",
                end - self.pos
            )));
        }
        Ok(())
    }

    /// Verify the whole payload was consumed.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] on trailing unread bytes.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos != self.payload.len() {
            return Err(SnapshotError::corrupt(format!(
                "{} trailing bytes after the last section",
                self.payload.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Write a `u64 → u64` map deterministically (entries sorted by key) —
/// Fx-hashed maps iterate in arbitrary order, which would make
/// snapshot bytes nondeterministic.
pub fn write_u64_map(w: &mut SnapshotWriter, map: &crate::fxmap::FxHashMap<u64, u64>) {
    let mut entries: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    w.usize(entries.len());
    for (k, v) in entries {
        w.u64(k);
        w.u64(v);
    }
}

/// Read a map written by [`write_u64_map`].
///
/// # Errors
/// Propagates decode errors; rejects duplicate keys.
pub fn read_u64_map(
    r: &mut SnapshotReader,
) -> Result<crate::fxmap::FxHashMap<u64, u64>, SnapshotError> {
    let len = r.seq_len(16)?;
    let mut map = crate::fxmap::FxHashMap::default();
    map.reserve(len);
    for _ in 0..len {
        let k = r.u64()?;
        let v = r.u64()?;
        if map.insert(k, v).is_some() {
            return Err(SnapshotError::corrupt("duplicate key in serialized map"));
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives_and_sections() {
        let mut w = SnapshotWriter::new();
        w.begin("outer");
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(0.1 + 0.2);
        w.bool(true);
        w.str("hello");
        w.begin("inner");
        w.usize(123);
        w.end();
        w.end();
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes).unwrap();
        r.begin("outer").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        r.begin("inner").unwrap();
        assert_eq!(r.usize().unwrap(), 123);
        r.end().unwrap();
        r.end().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let mut w = SnapshotWriter::new();
        w.begin("s");
        w.u64(0xDEAD_BEEF);
        w.str("payload");
        w.end();
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::open(&bytes[..cut]).and_then(|mut r| {
                r.begin("s")?;
                r.u64()?;
                r.str()?;
                r.end()?;
                r.finish()
            });
            assert!(err.is_err(), "truncation at {cut} went undetected");
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let mut w = SnapshotWriter::new();
        w.begin("s");
        w.u64(123_456_789);
        w.end();
        let bytes = w.finish();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << (byte % 8);
            let result = SnapshotReader::open(&bad).and_then(|mut r| {
                r.begin("s")?;
                r.u64()?;
                r.end()?;
                r.finish()
            });
            assert!(result.is_err(), "bit flip in byte {byte} went undetected");
        }
    }

    #[test]
    fn wrong_version_is_rejected_with_both_versions_named() {
        let w = SnapshotWriter::new();
        let mut bytes = w.finish();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Version precedes the checksum-protected payload, so patch is
        // visible as a version error, not a checksum error.
        match SnapshotReader::open(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn wrong_section_name_is_a_mismatch() {
        let mut w = SnapshotWriter::new();
        w.begin("lru");
        w.end();
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        match r.begin("lfu") {
            Err(SnapshotError::Mismatch { context }) => {
                assert!(
                    context.contains("lfu") && context.contains("lru"),
                    "{context}"
                );
            }
            other => panic!("expected Mismatch, got {other:?}"),
        }
    }

    #[test]
    fn under_consumed_section_is_corrupt() {
        let mut w = SnapshotWriter::new();
        w.begin("s");
        w.u64(1);
        w.u64(2);
        w.end();
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        r.begin("s").unwrap();
        r.u64().unwrap();
        assert!(matches!(r.end(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn reads_cannot_cross_section_boundaries() {
        let mut w = SnapshotWriter::new();
        w.begin("small");
        w.u8(1);
        w.end();
        w.u64(99);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        r.begin("small").unwrap();
        assert!(r.u64().is_err(), "read crossed the section boundary");
    }

    #[test]
    fn implausible_sequence_length_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.usize(usize::MAX / 2);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(r.seq_len(8), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn u64_map_round_trips_sorted() {
        let mut map = crate::fxmap::FxHashMap::default();
        for i in 0..100u64 {
            map.insert(i * 7919, i);
        }
        let mut w = SnapshotWriter::new();
        write_u64_map(&mut w, &map);
        // Determinism: a second serialization of the same map is
        // byte-identical despite arbitrary hash iteration order.
        let mut w2 = SnapshotWriter::new();
        write_u64_map(&mut w2, &map);
        let (a, b) = (w.finish(), w2.finish());
        assert_eq!(a, b);
        let mut r = SnapshotReader::open(&a).unwrap();
        let back = read_u64_map(&mut r).unwrap();
        assert_eq!(back, map);
    }
}
