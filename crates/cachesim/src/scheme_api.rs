//! The partitioning-scheme interface: the "replacement policy" component
//! of the paper's cache model, responsible for identifying the victim
//! among the `R` replacement candidates while enforcing partition sizes.

use crate::ids::PartitionId;
use crate::ranking_api::FutilityRanking;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::SlotId;

/// One replacement candidate as presented to a scheme: the physical
/// slot, the occupant line, its partition and its (unscaled) futility.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Physical slot holding the line.
    pub slot: SlotId,
    /// Line address.
    pub addr: u64,
    /// Partition (pool) the line currently belongs to.
    pub part: PartitionId,
    /// Unscaled futility in `[0, 1]` as reported by the futility ranking.
    pub futility: f64,
}

/// One scheme-specific telemetry sample pushed through
/// [`PartitionScheme::telemetry`]: a named series, optionally tied to a
/// pool, with the probe's current value. Collected by an attached
/// [`Recorder`](crate::recorder::Recorder) alongside the engine's
/// standard per-partition series.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Probe {
    /// Series name, e.g. `"alpha"`, `"aperture"`, `"shift_width"`.
    pub name: &'static str,
    /// Pool the value belongs to, or `None` for cache-global probes.
    pub part: Option<PartitionId>,
    /// Current value of the probed quantity.
    pub value: f64,
}

impl Probe {
    /// A per-pool probe.
    pub fn per_part(name: &'static str, part: PartitionId, value: f64) -> Self {
        Probe {
            name,
            part: Some(part),
            value,
        }
    }

    /// A cache-global probe.
    pub fn global(name: &'static str, value: f64) -> Self {
        Probe {
            name,
            part: None,
            value,
        }
    }
}

/// Sizing state the engine maintains on behalf of every scheme.
#[derive(Clone, Debug, Default)]
pub struct PartitionState {
    /// Target number of lines per pool (`N^T_i`). Pools beyond the
    /// application partitions (scheme-internal pools) have target 0.
    pub targets: Vec<usize>,
    /// Actual number of lines per pool (`N^A_i`).
    pub actual: Vec<usize>,
    /// Cumulative insertions per pool (`N^I_i`, never reset).
    pub insertions: Vec<u64>,
    /// Cumulative evictions per pool (`N^E_i`, never reset).
    pub evictions: Vec<u64>,
    /// Total line slots in the cache.
    pub total_slots: usize,
}

impl PartitionState {
    /// Initialize for `pools` pools over a cache of `total_slots` lines.
    pub fn new(pools: usize, total_slots: usize) -> Self {
        PartitionState {
            targets: vec![0; pools],
            actual: vec![0; pools],
            insertions: vec![0; pools],
            evictions: vec![0; pools],
            total_slots,
        }
    }

    /// Number of pools tracked.
    pub fn pools(&self) -> usize {
        self.actual.len()
    }

    /// Signed size error of pool `i`: `actual − target` in lines.
    /// Positive means oversized.
    pub fn oversize(&self, i: usize) -> i64 {
        self.actual[i] as i64 - self.targets[i] as i64
    }

    /// The pool, among the partitions of the given candidates, whose
    /// actual size most exceeds its target (ties broken by first
    /// occurrence). Returns `None` for an empty slice.
    pub fn most_oversized_of<'a, I>(&self, parts: I) -> Option<PartitionId>
    where
        I: IntoIterator<Item = &'a PartitionId>,
    {
        let mut best: Option<(i64, PartitionId)> = None;
        for &p in parts {
            let over = self.oversize(p.index());
            match best {
                Some((b, _)) if b >= over => {}
                _ => best = Some((over, p)),
            }
        }
        best.map(|(_, p)| p)
    }

    /// The most oversized pool among all application partitions
    /// (`0..targets.len()` pools with a nonzero target or any line).
    pub fn most_oversized_overall(&self) -> PartitionId {
        let mut best = (i64::MIN, 0usize);
        for i in 0..self.pools() {
            let over = self.oversize(i);
            if over > best.0 {
                best = (over, i);
            }
        }
        PartitionId(best.1 as u16)
    }
}

/// The victim choice returned by a scheme, plus any candidate retags
/// (pool migrations) the engine must apply *before* the eviction.
///
/// Retags implement Vantage-style demotions: `(candidate_index,
/// new_pool)` pairs. The victim index refers to the original candidate
/// list; a retagged candidate may also be the victim.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VictimDecision {
    /// Index into the candidate slice of the line to evict.
    pub victim: usize,
    /// Candidate retags to apply: `(candidate index, destination pool)`.
    pub retags: Vec<(usize, PartitionId)>,
}

impl VictimDecision {
    /// Evict candidate `victim`, no retags.
    pub fn evict(victim: usize) -> Self {
        VictimDecision {
            victim,
            retags: Vec::new(),
        }
    }
}

/// A cache-partitioning enforcement scheme (replacement policy).
///
/// Implementations: Futility Scaling (analytic and feedback-based) in
/// `futility-core`; Partitioning-First, CQVP, PriSM, Vantage, the
/// idealized FullAssoc and the unpartitioned policy in `baselines`.
pub trait PartitionScheme: Send {
    /// Short identifier, e.g. `"fs-feedback"`, `"pf"`, `"vantage"`.
    fn name(&self) -> &'static str;

    /// Number of scheme-internal pools needed beyond the application
    /// partitions (e.g. 1 for Vantage's unmanaged region).
    fn extra_pools(&self) -> usize {
        0
    }

    /// Called once by the engine after pools/targets are configured and
    /// whenever targets change.
    fn configure(&mut self, _state: &PartitionState) {}

    /// Choose the victim among `cands` for an incoming line of partition
    /// `incoming`. `cands` is never empty.
    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision;

    /// Allocation-free variant used by the engine's hot path: write the
    /// decision into a caller-owned buffer. Schemes that emit retags
    /// (Vantage) override this to reuse `out.retags`; for everything
    /// else the default delegates to [`PartitionScheme::victim`], whose
    /// empty `retags` vector costs nothing to move in.
    fn victim_into(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
        out: &mut VictimDecision,
    ) {
        *out = self.victim(incoming, cands, state);
    }

    /// On a fully-associative array there is no candidate list; the
    /// scheme instead names the partition to evict from, and the engine
    /// asks the ranking for that partition's most futile line. The
    /// default picks the most oversized pool, which is exactly the
    /// paper's idealized *FullAssoc* scheme.
    fn victim_partition_fully_assoc(
        &mut self,
        _incoming: PartitionId,
        state: &PartitionState,
    ) -> PartitionId {
        state.most_oversized_overall()
    }

    /// A line of `part` was inserted (counters in `state` are already
    /// updated).
    fn notify_insert(&mut self, _part: PartitionId, _state: &PartitionState) {}

    /// A line of `part` was evicted (counters in `state` are already
    /// updated).
    fn notify_evict(&mut self, _part: PartitionId, _state: &PartitionState) {}

    /// A line of `part` was hit.
    fn notify_hit(&mut self, _part: PartitionId) {}

    /// Scheme-specific pool assignment for a newly inserted line.
    /// Defaults to the requesting partition; Vantage could use this to
    /// insert into the managed region explicitly.
    fn insertion_pool(&self, incoming: PartitionId) -> PartitionId {
        incoming
    }

    /// Called when partition `accessor` hits a line currently tagged to
    /// a *different* pool `line_pool`. Returning `Some(dest)` retags the
    /// line to `dest` before the hit is processed (Vantage uses this to
    /// promote demoted lines out of the unmanaged region on a hit).
    fn on_foreign_hit(
        &mut self,
        _line_pool: PartitionId,
        _accessor: PartitionId,
    ) -> Option<PartitionId> {
        None
    }

    /// Optional hook for schemes that need the ranking when choosing a
    /// fully-associative victim differently; unused by default.
    fn wants_exact_ranking(&self) -> bool {
        false
    }

    /// Whether this scheme can pick victims from raw hardware-futility
    /// numerators via [`victim_from_bytes`](Self::victim_from_bytes).
    /// Must be constant for the lifetime of the scheme; the engine
    /// checks it (plus
    /// [`FutilityRanking::futility_bytes`](crate::ranking_api::FutilityRanking::futility_bytes))
    /// once per miss and otherwise keeps the `f64`
    /// [`victim_into`](Self::victim_into) path.
    fn wants_futility_bytes(&self) -> bool {
        false
    }

    /// Byte-lane victim selection: choose the victim index from the raw
    /// futility numerators `raw` (one per candidate, as produced by
    /// [`FutilityRanking::futility_bytes`](crate::ranking_api::FutilityRanking::futility_bytes)).
    /// Called only when [`wants_futility_bytes`](Self::wants_futility_bytes)
    /// is `true`; must return exactly the index [`victim_into`](Self::victim_into)
    /// would pick on the corresponding `f64` futilities — including
    /// tie-breaks — and implies an empty retag list (schemes that retag
    /// must not opt in).
    fn victim_from_bytes(
        &mut self,
        _incoming: PartitionId,
        _cands: &[Candidate],
        _raw: &[u16],
        _state: &PartitionState,
    ) -> usize {
        unreachable!("victim_from_bytes called on a scheme without byte-lane support")
    }

    /// Push the scheme's current internal control variables (scaling
    /// factors, apertures, shift widths, fallback rates, …) into `out`
    /// for an attached [`Recorder`](crate::recorder::Recorder). Called
    /// only on recorder sampling ticks — never on the recorder-disabled
    /// path — so implementations may do modest per-call work, but must
    /// not assume any particular cadence. The default emits nothing.
    fn telemetry(&self, _state: &PartitionState, _out: &mut Vec<Probe>) {}

    /// Serialize the scheme's internal control state (feedback
    /// registers, apertures, probabilities, RNG streams, …) for
    /// checkpointing. Stateless schemes keep the default, which writes
    /// an empty named section so restore still verifies scheme identity.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("stateless-scheme");
        w.end();
    }

    /// Restore state saved by [`save_state`](Self::save_state) into a
    /// scheme of the same kind and configuration.
    ///
    /// # Errors
    /// [`SnapshotError`] on decode failure or configuration mismatch.
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("stateless-scheme")?;
        r.end()
    }
}

/// Boxed schemes forward every method (including overridden defaults),
/// so a generic [`EngineCore`](crate::engine::EngineCore) instantiated
/// with `Box<dyn PartitionScheme>` behaves exactly like one
/// instantiated with the concrete scheme.
impl<T: PartitionScheme + ?Sized> PartitionScheme for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn extra_pools(&self) -> usize {
        (**self).extra_pools()
    }
    fn configure(&mut self, state: &PartitionState) {
        (**self).configure(state)
    }
    fn victim(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
    ) -> VictimDecision {
        (**self).victim(incoming, cands, state)
    }
    fn victim_into(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        state: &PartitionState,
        out: &mut VictimDecision,
    ) {
        (**self).victim_into(incoming, cands, state, out)
    }
    fn victim_partition_fully_assoc(
        &mut self,
        incoming: PartitionId,
        state: &PartitionState,
    ) -> PartitionId {
        (**self).victim_partition_fully_assoc(incoming, state)
    }
    fn notify_insert(&mut self, part: PartitionId, state: &PartitionState) {
        (**self).notify_insert(part, state)
    }
    fn notify_evict(&mut self, part: PartitionId, state: &PartitionState) {
        (**self).notify_evict(part, state)
    }
    fn notify_hit(&mut self, part: PartitionId) {
        (**self).notify_hit(part)
    }
    fn insertion_pool(&self, incoming: PartitionId) -> PartitionId {
        (**self).insertion_pool(incoming)
    }
    fn on_foreign_hit(
        &mut self,
        line_pool: PartitionId,
        accessor: PartitionId,
    ) -> Option<PartitionId> {
        (**self).on_foreign_hit(line_pool, accessor)
    }
    fn wants_exact_ranking(&self) -> bool {
        (**self).wants_exact_ranking()
    }
    fn wants_futility_bytes(&self) -> bool {
        (**self).wants_futility_bytes()
    }
    fn victim_from_bytes(
        &mut self,
        incoming: PartitionId,
        cands: &[Candidate],
        raw: &[u16],
        state: &PartitionState,
    ) -> usize {
        (**self).victim_from_bytes(incoming, cands, raw, state)
    }
    fn telemetry(&self, state: &PartitionState, out: &mut Vec<Probe>) {
        (**self).telemetry(state, out)
    }
    fn save_state(&self, w: &mut SnapshotWriter) {
        (**self).save_state(w)
    }
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        (**self).load_state(r)
    }
}

/// The unpartitioned replacement policy: evict the candidate with the
/// largest futility, ignoring partitions entirely.
#[derive(Copy, Clone, Debug, Default)]
pub struct EvictMaxFutility;

/// Index of the maximum-futility candidate (first on ties).
pub fn argmax_futility(cands: &[Candidate]) -> usize {
    let mut best = 0usize;
    for (i, c) in cands.iter().enumerate().skip(1) {
        if c.futility > cands[best].futility {
            best = i;
        }
    }
    best
}

impl PartitionScheme for EvictMaxFutility {
    fn name(&self) -> &'static str {
        "unpartitioned"
    }

    fn victim(
        &mut self,
        _incoming: PartitionId,
        cands: &[Candidate],
        _state: &PartitionState,
    ) -> VictimDecision {
        VictimDecision::evict(argmax_futility(cands))
    }

    fn victim_partition_fully_assoc(
        &mut self,
        incoming: PartitionId,
        _state: &PartitionState,
    ) -> PartitionId {
        incoming
    }

    fn wants_futility_bytes(&self) -> bool {
        true
    }

    fn victim_from_bytes(
        &mut self,
        _incoming: PartitionId,
        _cands: &[Candidate],
        raw: &[u16],
        _state: &PartitionState,
    ) -> usize {
        // Unscaled max futility is exactly the raw-numerator argmax;
        // the SWAR helper pins the same first-index tie-break as
        // `argmax_futility`.
        crate::swar::argmax_u15(raw)
    }
}

/// Helper used by several schemes and the engine's fully-associative
/// path: resolve the most futile line of `part` through the ranking.
pub fn most_futile_line_of(ranking: &dyn FutilityRanking, part: PartitionId) -> Option<u64> {
    ranking.max_futility_line(part)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(slot: SlotId, part: u16, fut: f64) -> Candidate {
        Candidate {
            slot,
            addr: slot as u64 + 100,
            part: PartitionId(part),
            futility: fut,
        }
    }

    #[test]
    fn argmax_picks_largest_futility() {
        let cands = [cand(0, 0, 0.2), cand(1, 1, 0.9), cand(2, 0, 0.5)];
        assert_eq!(argmax_futility(&cands), 1);
    }

    #[test]
    fn argmax_breaks_ties_by_first() {
        let cands = [cand(0, 0, 0.9), cand(1, 1, 0.9)];
        assert_eq!(argmax_futility(&cands), 0);
    }

    #[test]
    fn state_oversize_math() {
        let mut s = PartitionState::new(2, 100);
        s.targets = vec![50, 50];
        s.actual = vec![60, 40];
        assert_eq!(s.oversize(0), 10);
        assert_eq!(s.oversize(1), -10);
        assert_eq!(s.most_oversized_overall(), PartitionId(0));
    }

    #[test]
    fn most_oversized_of_candidate_parts() {
        let mut s = PartitionState::new(3, 100);
        s.targets = vec![30, 30, 40];
        s.actual = vec![25, 45, 30];
        let parts = [PartitionId(0), PartitionId(2)];
        // Partition 1 is most oversized overall but is not a candidate.
        assert_eq!(
            s.most_oversized_of(parts.iter()),
            Some(PartitionId(0)),
            "P0 (-5) beats P2 (-10)"
        );
    }

    #[test]
    fn unpartitioned_scheme_evicts_max() {
        let mut s = EvictMaxFutility;
        let state = PartitionState::new(1, 4);
        let cands = [cand(0, 0, 0.1), cand(1, 0, 0.7)];
        assert_eq!(
            s.victim(PartitionId(0), &cands, &state),
            VictimDecision::evict(1)
        );
    }
}
