//! Scale-out sharding: hash-partition the address space across N
//! independent engines and merge their results deterministically.
//!
//! A [`ShardedEngine`] wraps `N` shard engines (each a full
//! [`Engine`](crate::Engine): array + ranking + scheme + stats +
//! optional recorder, typically built over `1/N` of the total line
//! count). Every access is routed to the shard owning its address via
//! a fixed SplitMix64-mixed hash ([`shard_of`]); a block handed to
//! [`access_batch`](ShardedEngine::access_batch) is first split into
//! per-shard sub-blocks **preserving per-shard program order**, then
//! the sub-blocks run either sequentially or on a scoped worker pool
//! (`set_jobs`), reusing the same discipline as the experiment runner
//! (`fs_bench::runner`): work is keyed by shard index, never by worker
//! identity, so every observable result — merged statistics, merged
//! recorder rows, per-shard snapshot bytes — is byte-identical for any
//! job count and for any shard completion order.
//!
//! Why this is sound: shards own disjoint address sets, and no engine
//! state is shared between shards, so the only cross-shard operation
//! is the *merge*, which always folds shards in index order
//! ([`merged_stats`](ShardedEngine::merged_stats),
//! [`merged_recorder_rows`](ShardedEngine::merged_recorder_rows),
//! [`snapshot`](ShardedEngine::snapshot)). The pinning test is
//! `tests/sharded_determinism.rs`; the contract table lives in
//! DESIGN.md §12.
//!
//! Partition targets are global: [`set_targets`](ShardedEngine::set_targets)
//! divides each partition's line target across the shards (remainder
//! to the lowest-indexed shards), so each shard's enforcement scheme
//! sees only its shard-local `ActualSize` signal — the noisy-feedback
//! regime the sharded sweeps stress.

use crate::engine::{AccessBlock, AccessOutcome, Engine};
use crate::ids::{AccessMeta, PartitionId};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::stats::CacheStats;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

/// A worker-pool job: one shard, its sub-block, and its result slot.
type ShardJob<'a> = (&'a mut Box<dyn Engine>, &'a AccessBlock, &'a mut u64);

/// The pool's shared state: the job list plus the slot holding the
/// first captured panic payload (both under one mutex, so "first" is
/// well defined).
type PoolQueue<'a, 'b> = Mutex<(VecDeque<ShardJob<'a>>, &'b mut Option<PanicPayload>)>;
type PanicPayload = Box<dyn std::any::Any + Send>;

/// The shard owning `addr` among `num_shards` shards: a SplitMix64
/// finalizer over the address, reduced modulo the shard count. Fixed
/// (independent of job count, shard engine composition, or access
/// order) so a trace splits identically everywhere.
///
/// # Panics
/// Panics (in debug builds) if `num_shards == 0`.
#[inline]
pub fn shard_of(num_shards: usize, addr: u64) -> usize {
    debug_assert!(num_shards > 0, "need at least one shard");
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % num_shards as u64) as usize
}

/// CSV header matching [`ShardedEngine::merged_recorder_rows`].
pub const MERGED_TS_HEADER: [&str; 5] = ["shard", "time", "series", "part", "value"];

/// N independent shard engines behind one access interface, with
/// deterministic shard-keyed merging of every observable output. See
/// the [module docs](self) for the determinism contract.
pub struct ShardedEngine {
    shards: Vec<Box<dyn Engine>>,
    partitions: usize,
    jobs: usize,
    /// Per-shard splitter scratch, reused across batches so the
    /// steady-state shard loop stays allocation-free
    /// (`tests/no_alloc_hot_path.rs`, sharded arm).
    blocks: Vec<AccessBlock>,
    /// Scratch for [`set_targets`](Self::set_targets)' per-shard
    /// division, reused so online re-solve loops pushing fresh targets
    /// every epoch stay allocation-free (re-solve arm of
    /// `tests/no_alloc_hot_path.rs`).
    target_scratch: Vec<usize>,
}

impl ShardedEngine {
    /// Build a sharded engine from a factory called once per shard
    /// index, in order. Each shard must be configured with the same
    /// partition count; targets default to whatever the factory's
    /// engines carry — call [`set_targets`](Self::set_targets) with the
    /// *global* targets to divide them across shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or a shard disagrees on the
    /// partition count.
    pub fn new(
        num_shards: usize,
        partitions: usize,
        mut factory: impl FnMut(usize) -> Box<dyn Engine>,
    ) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let shards: Vec<Box<dyn Engine>> = (0..num_shards).map(&mut factory).collect();
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(
                s.partitions(),
                partitions,
                "shard {i} has {} partitions, expected {partitions}",
                s.partitions()
            );
        }
        ShardedEngine {
            shards,
            partitions,
            jobs: 1,
            blocks: (0..num_shards).map(|_| AccessBlock::new()).collect(),
            target_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of application partitions (same on every shard).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Worker threads used per batch (1 = run shards sequentially).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Set the worker count for [`access_batch`](Self::access_batch).
    /// Results are byte-identical for any value; only wall-clock
    /// changes. Clamped to `[1, num_shards]`.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.clamp(1, self.shards.len());
    }

    /// The shard owning `addr`.
    #[inline]
    pub fn route(&self, addr: u64) -> usize {
        shard_of(self.shards.len(), addr)
    }

    /// Shard `i`, for inspection.
    pub fn shard(&self, i: usize) -> &dyn Engine {
        self.shards[i].as_ref()
    }

    /// Mutable shard `i` (e.g. to attach a recorder or reset stats).
    /// Mutating a shard directly is outside the determinism contract —
    /// do it identically on every replica you intend to compare.
    pub fn shard_mut(&mut self, i: usize) -> &mut dyn Engine {
        self.shards[i].as_mut()
    }

    /// Set *global* per-partition targets (lines): each partition's
    /// target is divided evenly across shards, remainder going to the
    /// lowest-indexed shards, so the shard totals reconstruct the
    /// global target exactly.
    ///
    /// # Panics
    /// Panics if `targets` is longer than the partition count.
    pub fn set_targets(&mut self, targets: &[usize]) {
        assert!(targets.len() <= self.partitions, "too many targets");
        let s = self.shards.len();
        let per = &mut self.target_scratch;
        per.clear();
        per.resize(targets.len(), 0);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            for (d, &t) in per.iter_mut().zip(targets) {
                *d = t / s + usize::from(i < t % s);
            }
            shard.set_targets(per);
        }
    }

    /// Total accesses processed across all shards.
    pub fn accesses(&self) -> u64 {
        self.shards.iter().map(|s| s.time()).sum()
    }

    /// Split `block` into the per-shard scratch sub-blocks, preserving
    /// per-shard program order (the splitter walks the block once, in
    /// order; each access is appended to exactly one shard's
    /// sub-block). Exposed for tests and drivers that apply sub-blocks
    /// manually; [`access_batch`](Self::access_batch) does this
    /// internally.
    pub fn split(&mut self, block: &AccessBlock) -> &[AccessBlock] {
        for b in &mut self.blocks {
            b.clear();
        }
        let n = self.shards.len();
        let (parts, addrs, metas) = (block.parts(), block.addrs(), block.metas());
        for i in 0..block.len() {
            self.blocks[shard_of(n, addrs[i])].push(parts[i], addrs[i], metas[i]);
        }
        &self.blocks
    }

    /// Process one access by routing it to its owning shard.
    pub fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
        let s = self.route(addr);
        self.shards[s].access(part, addr, meta)
    }

    /// Process a block of accesses: split by shard, then drive each
    /// shard's sub-block through its batched pipeline — sequentially
    /// with `jobs() == 1`, otherwise on a scoped worker pool. Returns
    /// the total hit count. Observably identical for any job count.
    pub fn access_batch(&mut self, block: &AccessBlock) -> u64 {
        self.split(block);
        if self.jobs <= 1 || self.shards.len() == 1 {
            let mut hits = 0u64;
            for (shard, sub) in self.shards.iter_mut().zip(&self.blocks) {
                if !sub.is_empty() {
                    hits += shard.access_batch(sub);
                }
            }
            return hits;
        }
        self.run_parallel()
    }

    /// Worker-pool execution of the already-split sub-blocks: workers
    /// pop `(shard, sub-block, result slot)` jobs from a shared queue,
    /// exactly like the experiment runner — results land in per-shard
    /// slots, so completion order is unobservable.
    ///
    /// Panic discipline: a shard panicking mid-batch must surface its
    /// *own* payload to the caller. Each job runs under `catch_unwind`;
    /// the first captured payload wins (stored under the job-queue
    /// mutex, so "first" is well defined), the queue is drained so
    /// sibling workers stop cleanly, and the payload is re-raised on
    /// the caller's thread after the scope joins. Without this, the
    /// scoped-thread join aborts the process / replaces the message
    /// with an opaque "a scoped thread panicked" (and a worker dying
    /// while queue-locked would poison siblings into a bare "shard
    /// queue" panic) — masking the root cause. Pinned by
    /// `worker_panic_surfaces_original_message`.
    fn run_parallel(&mut self) -> u64 {
        let jobs = self.jobs;
        let mut hit_slots = vec![0u64; self.shards.len()];
        let mut first_panic = None;
        {
            let queue: PoolQueue = Mutex::new((
                self.shards
                    .iter_mut()
                    .zip(&self.blocks)
                    .zip(hit_slots.iter_mut())
                    .filter(|((_, sub), _)| !sub.is_empty())
                    .map(|((e, b), h)| (e, b, h))
                    .collect(),
                &mut first_panic,
            ));
            // A panicking job never holds the queue lock, but stay
            // poison-tolerant anyway: the queue is a plain job list,
            // consistent under any interleaving.
            let pop = || {
                queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
                    .pop_front()
            };
            std::thread::scope(|s| {
                for _ in 0..jobs {
                    s.spawn(|| {
                        while let Some((engine, sub, hits)) = pop() {
                            match panic::catch_unwind(AssertUnwindSafe(|| engine.access_batch(sub)))
                            {
                                Ok(h) => *hits = h,
                                Err(payload) => {
                                    let mut q = queue
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    q.0.clear();
                                    if q.1.is_none() {
                                        *q.1 = Some(payload);
                                    }
                                    return;
                                }
                            }
                        }
                    });
                }
            });
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        hit_slots.iter().sum()
    }

    /// Merged statistics: a fresh [`CacheStats`] with every shard's
    /// counters folded in, in shard-index order. The merge is a pure
    /// read (shards are unchanged) and allocates; call it at
    /// measurement boundaries, not in the hot loop. The result is a
    /// read-only aggregate — feeding new samples into it is
    /// unsupported.
    pub fn merged_stats(&self) -> CacheStats {
        let pools = self.shards[0].stats().partitions().len();
        let mut merged = CacheStats::new(pools);
        for shard in &self.shards {
            merged.merge_from(shard.stats());
        }
        merged
    }

    /// Reset every shard's statistics (e.g. at the warmup boundary).
    pub fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.stats_mut().reset();
        }
    }

    /// Disable (or re-enable) deviation sampling on every shard, for
    /// pure-throughput measurement.
    pub fn set_sample_deviation(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.stats_mut().sample_deviation = on;
        }
    }

    /// Attach a [`TimeSeriesRecorder`](crate::TimeSeriesRecorder) to
    /// every shard (cadence in shard-local accesses).
    pub fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
        for shard in &mut self.shards {
            shard.attach_timeseries(cadence, capacity);
        }
    }

    /// Forward a certain-miss gather cap to every shard (see
    /// [`EngineCore::set_miss_run_cap`](crate::EngineCore::set_miss_run_cap)).
    pub fn set_miss_run_cap(&mut self, cap: usize) {
        for shard in &mut self.shards {
            shard.set_miss_run_cap(cap);
        }
    }

    /// Merged flight-recorder rows, shard-keyed: each shard's retained
    /// time-series rows (`time,series,part,value`) prefixed with the
    /// shard index and concatenated in shard order (header:
    /// [`MERGED_TS_HEADER`]). Shards without a
    /// [`TimeSeriesRecorder`](crate::TimeSeriesRecorder) contribute
    /// nothing. Byte-identical for any job count.
    pub fn merged_recorder_rows(&self) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(ts) = shard.timeseries() {
                for mut row in ts.rows() {
                    let mut full = Vec::with_capacity(row.len() + 1);
                    full.push(i.to_string());
                    full.append(&mut row);
                    out.push(full);
                }
            }
        }
        out
    }

    /// Serialize the whole sharded engine: a versioned `FSSN` container
    /// holding the shard count, partition count and every shard's own
    /// [`snapshot`](crate::EngineCore::snapshot) image as an opaque
    /// checksummed section, in shard order.
    ///
    /// Must be called between batches (every shard's deferred state is
    /// flushed at batch boundaries).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin("sharded");
        w.usize(self.shards.len());
        w.usize(self.partitions);
        w.end();
        for shard in &self.shards {
            w.begin("shard-image");
            w.bytes(&shard.snapshot());
            w.end();
        }
        w.finish()
    }

    /// Restore a [`snapshot`](Self::snapshot) into this engine. The
    /// shard count, partition count and every shard's composition must
    /// match. All shard images are decoded from the container before
    /// any shard is touched; per-shard restores then apply in order
    /// (each one commit-at-end, per the [`EngineCore::restore`]
    /// contract).
    ///
    /// [`EngineCore::restore`]: crate::EngineCore::restore
    ///
    /// # Errors
    /// Fails without panicking on truncated, corrupted or mismatched
    /// input. On error the engine state is unspecified; discard it.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        r.begin("sharded")?;
        let shards = r.usize()?;
        if shards != self.shards.len() {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {shards} shards, engine has {}",
                self.shards.len()
            )));
        }
        let partitions = r.usize()?;
        if partitions != self.partitions {
            return Err(SnapshotError::mismatch(format!(
                "snapshot has {partitions} partitions, engine has {}",
                self.partitions
            )));
        }
        r.end()?;
        let mut images = Vec::with_capacity(shards);
        for _ in 0..shards {
            r.begin("shard-image")?;
            images.push(r.bytes()?);
            r.end()?;
        }
        r.finish()?;
        for (shard, image) in self.shards.iter_mut().zip(images) {
            shard.restore(image)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::RandomCandidates;
    use crate::PartitionedCache;

    fn shard_factory(i: usize) -> Box<dyn Engine> {
        Box::new(PartitionedCache::new(
            Box::new(RandomCandidates::new(64, 8, 100 + i as u64)),
            crate::naive_lru(),
            crate::evict_max_futility(),
            2,
        ))
    }

    fn block(n: usize, seed: u64) -> AccessBlock {
        let mut b = AccessBlock::with_capacity(n);
        let mut x = seed | 1;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.push(
                PartitionId((x % 2) as u16),
                (x >> 30) % 400,
                AccessMeta::default(),
            );
        }
        b
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for addr in 0..1000u64 {
            let s = shard_of(4, addr);
            assert!(s < 4);
            assert_eq!(s, shard_of(4, addr), "routing must be a function");
        }
        // All shards receive traffic under any reasonable hash.
        let mut seen = [false; 4];
        for addr in 0..64u64 {
            seen[shard_of(4, addr)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        assert_eq!(shard_of(1, 12345), 0);
    }

    #[test]
    fn split_preserves_per_shard_order_and_loses_nothing() {
        let mut e = ShardedEngine::new(4, 2, shard_factory);
        let b = block(500, 9);
        let subs = e.split(&b);
        assert_eq!(subs.iter().map(|s| s.len()).sum::<usize>(), 500);
        // Each sub-block must be the in-order subsequence of the block
        // owned by that shard.
        for (s, sub) in subs.iter().enumerate() {
            let expect: Vec<u64> = b
                .addrs()
                .iter()
                .copied()
                .filter(|&a| shard_of(4, a) == s)
                .collect();
            assert_eq!(sub.addrs(), expect.as_slice(), "shard {s}");
        }
    }

    #[test]
    fn merged_stats_match_scalar_routing() {
        // Batched sharded execution must agree with routing each access
        // scalar-style through the same shard compositions.
        let mut batched = ShardedEngine::new(3, 2, shard_factory);
        let mut scalar: Vec<PartitionedCache> = (0..3)
            .map(|i| {
                PartitionedCache::new(
                    Box::new(RandomCandidates::new(64, 8, 100 + i as u64)),
                    crate::naive_lru(),
                    crate::evict_max_futility(),
                    2,
                )
            })
            .collect();
        let b = block(3000, 5);
        let hits = batched.access_batch(&b);
        let mut scalar_hits = 0u64;
        for i in 0..b.len() {
            let s = shard_of(3, b.addrs()[i]);
            scalar_hits += u64::from(
                scalar[s]
                    .access(b.parts()[i], b.addrs()[i], b.metas()[i])
                    .is_hit(),
            );
        }
        assert_eq!(hits, scalar_hits);
        let merged = batched.merged_stats();
        let total_hits: u64 = scalar.iter().map(|c| c.stats().total_hits()).sum();
        let total_misses: u64 = scalar.iter().map(|c| c.stats().total_misses()).sum();
        assert_eq!(merged.total_hits(), total_hits);
        assert_eq!(merged.total_misses(), total_misses);
        assert_eq!(batched.accesses(), 3000);
    }

    #[test]
    fn job_count_does_not_change_results() {
        let mut a = ShardedEngine::new(4, 2, shard_factory);
        let mut b = ShardedEngine::new(4, 2, shard_factory);
        a.set_jobs(1);
        b.set_jobs(4);
        for round in 0..6u64 {
            let blk = block(700, round * 13 + 1);
            assert_eq!(a.access_batch(&blk), b.access_batch(&blk));
        }
        assert_eq!(a.snapshot(), b.snapshot());
        let (sa, sb) = (a.merged_stats(), b.merged_stats());
        assert_eq!(sa.total_hits(), sb.total_hits());
        assert_eq!(sa.total_misses(), sb.total_misses());
    }

    #[test]
    fn global_targets_divide_across_shards() {
        let mut e = ShardedEngine::new(4, 2, shard_factory);
        e.set_targets(&[33, 19]);
        let t0: usize = (0..4).map(|i| e.shard(i).state().targets[0]).sum();
        let t1: usize = (0..4).map(|i| e.shard(i).state().targets[1]).sum();
        assert_eq!(t0, 33);
        assert_eq!(t1, 19);
        // Remainder goes to the lowest-indexed shards.
        assert_eq!(e.shard(0).state().targets[0], 9);
        assert_eq!(e.shard(3).state().targets[0], 8);
    }

    /// An engine that panics on its first batch, delegating everything
    /// else — the fault-injection vehicle for the worker-pool panic
    /// contract.
    struct PanicOnBatch {
        inner: Box<dyn Engine>,
        msg: &'static str,
    }

    impl Engine for PanicOnBatch {
        fn access(&mut self, part: PartitionId, addr: u64, meta: AccessMeta) -> AccessOutcome {
            self.inner.access(part, addr, meta)
        }
        fn access_batch(&mut self, _block: &AccessBlock) -> u64 {
            panic!("{}", self.msg)
        }
        fn access_batch_into(
            &mut self,
            block: &AccessBlock,
            outcomes: &mut Vec<AccessOutcome>,
        ) -> u64 {
            self.inner.access_batch_into(block, outcomes)
        }
        fn access_batch_slices(
            &mut self,
            parts: &[PartitionId],
            addrs: &[u64],
            metas: &[AccessMeta],
        ) -> u64 {
            self.inner.access_batch_slices(parts, addrs, metas)
        }
        fn set_targets(&mut self, targets: &[usize]) {
            self.inner.set_targets(targets)
        }
        fn partitions(&self) -> usize {
            self.inner.partitions()
        }
        fn stats(&self) -> &CacheStats {
            self.inner.stats()
        }
        fn stats_mut(&mut self) -> &mut CacheStats {
            self.inner.stats_mut()
        }
        fn state(&self) -> &crate::scheme_api::PartitionState {
            self.inner.state()
        }
        fn time(&self) -> u64 {
            self.inner.time()
        }
        fn array(&self) -> &dyn crate::array::CacheArray {
            self.inner.array()
        }
        fn ranking(&self) -> &dyn crate::ranking_api::FutilityRanking {
            self.inner.ranking()
        }
        fn scheme(&self) -> &dyn crate::scheme_api::PartitionScheme {
            self.inner.scheme()
        }
        fn snapshot(&self) -> Vec<u8> {
            self.inner.snapshot()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
            self.inner.restore(bytes)
        }
        fn attach_timeseries(&mut self, cadence: u64, capacity: usize) {
            self.inner.attach_timeseries(cadence, capacity)
        }
        fn timeseries(&self) -> Option<&crate::TimeSeriesRecorder> {
            self.inner.timeseries()
        }
        fn timeseries_mut(&mut self) -> Option<&mut crate::TimeSeriesRecorder> {
            self.inner.timeseries_mut()
        }
        fn set_miss_run_cap(&mut self, cap: usize) {
            self.inner.set_miss_run_cap(cap)
        }
    }

    #[test]
    fn worker_panic_surfaces_original_message() {
        // Regression: a panicking shard worker used to take the whole
        // pool down with an opaque secondary panic (scoped-join
        // "a scoped thread panicked" / poisoned "shard queue"),
        // masking the root cause. The pool must re-raise the *first
        // worker's own payload* on the calling thread.
        const MSG: &str = "injected shard failure: shard 2 ate a bad line";
        let mut e = ShardedEngine::new(4, 2, |i| {
            if i == 2 {
                Box::new(PanicOnBatch {
                    inner: shard_factory(i),
                    msg: MSG,
                })
            } else {
                shard_factory(i)
            }
        });
        e.set_jobs(4);
        let blk = block(2000, 21); // large enough to hit every shard
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            e.access_batch(&blk);
        }))
        .expect_err("injected panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string payload>".into());
        assert_eq!(msg, MSG, "original panic payload must surface verbatim");
    }

    #[test]
    fn snapshot_roundtrip_and_mismatch() {
        let mut donor = ShardedEngine::new(2, 2, shard_factory);
        donor.access_batch(&block(900, 3));
        let snap = donor.snapshot();

        let mut resumed = ShardedEngine::new(2, 2, shard_factory);
        resumed.restore(&snap).unwrap();
        let cont = block(400, 77);
        assert_eq!(donor.access_batch(&cont), resumed.access_batch(&cont));
        assert_eq!(donor.snapshot(), resumed.snapshot());

        let err = ShardedEngine::new(3, 2, shard_factory)
            .restore(&snap)
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch { .. }), "{err}");
    }
}
