//! SWAR (SIMD-within-a-register) argmax over packed 16-bit lanes.
//!
//! The byte-lane replacement path (DESIGN.md §10) reduces victim
//! selection for hardware-futility rankings to an integer argmax: each
//! candidate contributes a raw futility numerator `≤ 255`, optionally
//! scaled by a feedback shift `≤ 7`, so every value fits in 15 bits.
//! [`argmax_u15`] finds the first maximum over such values four lanes
//! at a time in plain `u64` arithmetic — no platform intrinsics, no
//! `unsafe` — and is pinned bit-exact to the scalar strict-`>` first-max
//! loop the schemes used before (ties resolve to the lowest index).
//!
//! Two passes over the packed words:
//!
//! 1. a vertical per-lane running max (borrow-trick unsigned lane
//!    compare, valid because bit 15 of every lane is clear), folded
//!    horizontally at the end;
//! 2. a first-lane-equal-to-max scan using the classic zero-lane detect
//!    `(x - 0x0001…) & !x & 0x8000…`, whose *lowest* set bit always
//!    marks a true zero lane even though borrows may corrupt higher
//!    lanes.

/// Lanes per packed `u64` word.
const LANES: usize = 4;
/// Per-lane sign/borrow bit: bit 15 of each 16-bit lane.
const HI: u64 = 0x8000_8000_8000_8000;
/// The constant 1 in every lane.
const ONES: u64 = 0x0001_0001_0001_0001;

/// Pack up to four 16-bit values into one word, low lane first;
/// missing lanes are zero (zero never raises a max and pass 2 never
/// scans padding, so padding is inert).
#[inline]
fn pack(chunk: &[u16]) -> u64 {
    let mut w = 0u64;
    for (i, &v) in chunk.iter().enumerate() {
        w |= (v as u64) << (16 * i);
    }
    w
}

/// Per-lane unsigned max of two packed words whose lanes are all
/// `< 0x8000`. `(x | HI) - y` cannot borrow across lanes (each lane's
/// minuend has bit 15 set, its subtrahend does not), and leaves bit 15
/// set exactly when `x_lane >= y_lane`; the bit is then smeared into a
/// full-lane select mask.
#[inline]
fn lane_max(x: u64, y: u64) -> u64 {
    let ge = ((x | HI).wrapping_sub(y)) & HI;
    let mask = ge | ge.wrapping_sub(ge >> 15);
    (x & mask) | (y & !mask)
}

/// Reference implementation: index of the maximum, first index on ties
/// — the strict-`>` scan every scheme's scalar victim loop uses. The
/// SWAR path is pinned bit-exact against this.
pub fn argmax_u15_scalar(vals: &[u16]) -> usize {
    let mut best = 0usize;
    for (i, &v) in vals.iter().enumerate().skip(1) {
        if v > vals[best] {
            best = i;
        }
    }
    best
}

/// Index of the maximum value, first index on ties, computed four
/// lanes at a time. Values must fit in 15 bits (`< 0x8000`); the
/// byte-lane contract (`raw ≤ 255`, shift `≤ 7`, so `≤ 32640`)
/// guarantees this at every call site and a debug assertion enforces
/// it.
///
/// # Panics
/// Panics if `vals` is empty.
pub fn argmax_u15(vals: &[u16]) -> usize {
    assert!(!vals.is_empty(), "argmax of empty slice");
    debug_assert!(vals.iter().all(|&v| v < 0x8000), "argmax_u15 lane overflow");
    // Pass 1: vertical per-lane running max, then a horizontal fold.
    let mut acc = 0u64;
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        acc = lane_max(acc, pack(chunk));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        acc = lane_max(acc, pack(rem));
    }
    let mut max = 0u16;
    for lane in 0..LANES {
        max = max.max((acc >> (16 * lane)) as u16);
    }
    // Pass 2: first lane equal to the max. XOR against the broadcast
    // max makes the target lanes zero; the zero-lane detect's lowest
    // set bit is reliable (no borrow has propagated past a zero lane
    // from below — lower nonzero lanes never generate one), so
    // `trailing_zeros` lands exactly on the first occurrence.
    let target = (max as u64).wrapping_mul(ONES);
    let mut base = 0usize;
    let mut chunks = vals.chunks_exact(LANES);
    for chunk in &mut chunks {
        let diff = pack(chunk) ^ target;
        let zero = diff.wrapping_sub(ONES) & !diff & HI;
        if zero != 0 {
            return base + zero.trailing_zeros() as usize / 16;
        }
        base += LANES;
    }
    // The tail is scanned scalar so zero padding can never match a
    // zero max.
    for (i, &v) in chunks.remainder().iter().enumerate() {
        if v == max {
            return base + i;
        }
    }
    unreachable!("maximum vanished between passes")
}

/// Reference implementation for [`sum_u32`]: plain widening sum.
pub fn sum_u32_scalar(vals: &[u32]) -> u64 {
    vals.iter().map(|&v| v as u64).sum()
}

/// Sum of a short row of `u32` counters, two 32-bit lanes per `u64`
/// word. This is the horizontal primitive of the two-level bucket
/// ranking (`bucketrank`): range-rank queries reduce to sums over a
/// 16-lane summary row plus at most two 16-counter partial rows, so
/// every call site hands in at most 16 values.
///
/// Lane safety: each addend must stay below `2^27` (a per-bucket or
/// per-row *line count*, so bounded by the pool's population — far
/// below that for any simulated cache) and the slice at most 16 long;
/// then each 32-bit lane accumulates `< 8 · 2^27 = 2^30` and no carry
/// can cross the lane boundary. Both bounds are debug-asserted, and
/// the result is pinned bit-exact to [`sum_u32_scalar`].
pub fn sum_u32(vals: &[u32]) -> u64 {
    debug_assert!(vals.len() <= 16, "sum_u32 row too long: {}", vals.len());
    debug_assert!(vals.iter().all(|&v| v < 1 << 27), "sum_u32 addend overflow");
    // Two lanes per word: low counter in bits 0..32, high in 32..64.
    let mut acc = 0u64;
    let mut pairs = vals.chunks_exact(2);
    for p in &mut pairs {
        acc += (p[0] as u64) | ((p[1] as u64) << 32);
    }
    let mut total = (acc & 0xFFFF_FFFF) + (acc >> 32);
    if let [odd] = pairs.remainder() {
        total += *odd as u64;
    }
    debug_assert_eq!(total, sum_u32_scalar(vals));
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(argmax_u15(&[0]), 0);
        assert_eq!(argmax_u15(&[0x7FFF]), 0);
    }

    #[test]
    fn all_equal_ties_break_to_first() {
        for len in 1..=19 {
            let vals = vec![7u16; len];
            assert_eq!(argmax_u15(&vals), 0, "len {len}");
            assert_eq!(argmax_u15_scalar(&vals), 0, "len {len}");
        }
    }

    #[test]
    fn max_found_in_every_position() {
        // The max placed at each index of each length up to several
        // words, over a tie-free base, lands exactly there.
        for len in 1..=21 {
            for pos in 0..len {
                let mut vals = vec![3u16; len];
                vals[pos] = 9;
                assert_eq!(argmax_u15(&vals), pos, "len {len} pos {pos}");
            }
        }
    }

    #[test]
    fn duplicate_max_picks_first_across_word_boundaries() {
        // Duplicated maxima in the same word, adjacent words, and
        // first-word-vs-tail must all resolve to the earlier index.
        for (a, b) in [(0, 2), (1, 4), (3, 5), (2, 9), (6, 11), (0, 11)] {
            let mut vals = vec![1u16; 12];
            vals[a] = 500;
            vals[b] = 500;
            assert_eq!(argmax_u15(&vals), a, "dup at {a},{b}");
        }
    }

    #[test]
    fn zero_max_does_not_match_padding() {
        // All-zero input of a non-multiple-of-4 length: the answer must
        // be index 0, not a phantom padding lane.
        assert_eq!(argmax_u15(&[0, 0, 0, 0, 0]), 0);
        assert_eq!(argmax_u15(&[0, 0, 0]), 0);
    }

    #[test]
    fn matches_scalar_on_pseudorandom_streams() {
        // Deterministic LCG sweep over many lengths and value ranges;
        // narrow ranges force heavy ties.
        let mut x = 0x9E3779B97F4A7C15u64;
        for &range in &[2u64, 5, 256, 0x8000] {
            for len in 1..=40 {
                let mut vals = Vec::with_capacity(len);
                for _ in 0..len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    vals.push(((x >> 33) % range) as u16);
                }
                assert_eq!(
                    argmax_u15(&vals),
                    argmax_u15_scalar(&vals),
                    "range {range} len {len} vals {vals:?}"
                );
            }
        }
    }

    #[test]
    fn sum_matches_scalar_on_every_length() {
        // Every row length the two-level descent can produce (0..=16),
        // over pseudorandom counters up to the documented lane bound.
        let mut x = 0xD1B54A32D192ED03u64;
        for len in 0..=16usize {
            for _ in 0..50 {
                let mut vals = Vec::with_capacity(len);
                for _ in 0..len {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    vals.push(((x >> 37) % (1 << 27)) as u32);
                }
                assert_eq!(sum_u32(&vals), sum_u32_scalar(&vals), "len {len}");
            }
        }
    }

    #[test]
    fn sum_handles_bound_values() {
        // 16 addends at the lane bound minus one: the worst legal case.
        let vals = [(1u32 << 27) - 1; 16];
        assert_eq!(sum_u32(&vals), 16 * ((1u64 << 27) - 1));
        assert_eq!(sum_u32(&[]), 0);
        assert_eq!(sum_u32(&[7]), 7);
    }

    #[test]
    fn boundary_values_survive_the_borrow_trick() {
        // 0x7FFF is the largest legal lane; make sure the compare and
        // the equality detect both handle it.
        assert_eq!(argmax_u15(&[0x7FFE, 0x7FFF, 0x7FFF, 0, 1]), 1);
        assert_eq!(argmax_u15(&[0x7FFF, 0, 0, 0, 0x7FFF]), 0);
    }
}
