//! The flight recorder: opt-in time-series observability for
//! [`PartitionedCache`](crate::PartitionedCache).
//!
//! The paper's sizing claims are temporal — Figure 5's MAD describes a
//! random walk around target, Algorithm 2 is a feedback controller,
//! Vantage's apertures move with size error — but end-of-run scalars
//! cannot show any of that. A [`Recorder`] attached to the engine is
//! ticked after every access; the stock [`TimeSeriesRecorder`] samples
//! on an access-count cadence, capturing per-partition
//! occupancy/target/deviation, interval hit/miss/eviction counts, the
//! interval AEF, and whatever scheme-specific probes the scheme pushes
//! through [`PartitionScheme::telemetry`].
//!
//! Cost model: with no recorder attached the engine pays one branch per
//! access and allocates nothing (see `tests/no_alloc_hot_path.rs`); with
//! a recorder attached, off-cadence accesses pay one extra modulo, and
//! sampling ticks do O(partitions + probes) work against a bounded ring
//! buffer.

use crate::ids::PartitionId;
use crate::scheme_api::{PartitionScheme, PartitionState, Probe};
use crate::stats::CacheStats;
use std::any::Any;
use std::collections::VecDeque;

/// Everything a [`Recorder`] may inspect on a tick: engine time, the
/// sizing state, accumulated statistics and the scheme (for telemetry
/// probes). Borrows are read-only; a recorder observes, never steers.
pub struct RecordCtx<'a> {
    /// Engine time (accesses processed so far, including this one).
    pub time: u64,
    /// Number of application partitions (scheme pools excluded — their
    /// dynamics surface through scheme telemetry probes instead).
    pub partitions: usize,
    /// Live sizing state (targets, actual sizes, cumulative counters).
    pub state: &'a PartitionState,
    /// Accumulated statistics, including the reset generation.
    pub stats: &'a CacheStats,
    /// The partitioning scheme, for [`PartitionScheme::telemetry`].
    pub scheme: &'a dyn PartitionScheme,
}

/// An observer ticked by the engine after every completed access while
/// attached via
/// [`PartitionedCache::set_recorder`](crate::PartitionedCache::set_recorder).
pub trait Recorder: Send {
    /// Observe the cache after one access. Implementations decide their
    /// own sampling cadence from `ctx.time`.
    fn record(&mut self, ctx: &RecordCtx<'_>);

    /// Downcast support for retrieving a concrete recorder back from
    /// the engine.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// One recorded time-series sample in long format: at `time`, series
/// `series` (for `part`, if per-partition) had value `value`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Sample {
    /// Engine time of the sampling tick.
    pub time: u64,
    /// Series name (standard engine series or a scheme probe name).
    pub series: &'static str,
    /// Partition the sample belongs to; `None` for cache-global series.
    pub part: Option<PartitionId>,
    /// Sampled value. NaN encodes "undefined this interval" (e.g. the
    /// AEF of an interval with no evictions).
    pub value: f64,
}

/// Per-partition counter snapshot from the previous sampling tick, so
/// each tick reports interval deltas rather than cumulative totals.
#[derive(Copy, Clone, Debug, Default)]
struct IntervalBase {
    hits: u64,
    misses: u64,
    evictions: u64,
    futility_sum: f64,
}

/// The standard engine series emitted per partition on every sampling
/// tick, in emission order. `occupancy`/`target`/`deviation` are
/// instantaneous; `hits`/`misses`/`evictions`/`aef` cover the interval
/// since the previous tick.
pub const STANDARD_SERIES: [&str; 7] = [
    "occupancy",
    "target",
    "deviation",
    "hits",
    "misses",
    "evictions",
    "aef",
];

/// Ring-buffered sampling recorder: every `cadence` accesses, emit the
/// [`STANDARD_SERIES`] for each application partition plus the scheme's
/// telemetry probes, into a bounded ring of [`Sample`]s (oldest samples
/// drop first once `capacity` is reached).
///
/// A [`CacheStats::reset`] between ticks (e.g. the post-warmup reset of
/// the figure drivers) is detected through the stats generation counter;
/// the recorder then rebaselines its interval snapshots to zero instead
/// of underflowing the counter deltas, so recording may span a warmup
/// boundary.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    cadence: u64,
    capacity: usize,
    samples: VecDeque<Sample>,
    dropped: u64,
    prev: Vec<IntervalBase>,
    prev_generation: u64,
    /// Scratch buffer handed to `PartitionScheme::telemetry`.
    probes: Vec<Probe>,
}

impl TimeSeriesRecorder {
    /// A recorder sampling every `cadence` accesses, retaining at most
    /// `capacity` samples (oldest dropped first).
    ///
    /// # Panics
    /// Panics if `cadence` or `capacity` is zero.
    pub fn new(cadence: u64, capacity: usize) -> Self {
        assert!(cadence > 0, "cadence must be positive");
        assert!(capacity > 0, "capacity must be positive");
        TimeSeriesRecorder {
            cadence,
            capacity,
            samples: VecDeque::new(),
            dropped: 0,
            prev: Vec::new(),
            prev_generation: 0,
            probes: Vec::new(),
        }
    }

    /// Sampling cadence in accesses.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl DoubleEndedIterator<Item = &Sample> + ExactSizeIterator {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted from the ring because `capacity` was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard all retained samples (baselines are kept, so subsequent
    /// interval deltas remain correct).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.dropped = 0;
    }

    /// CSV header matching [`rows`](Self::rows).
    pub const CSV_HEADER: [&'static str; 4] = ["time", "series", "part", "value"];

    /// The retained samples as long-format CSV rows
    /// (`time,series,part,value`; `part` is `-` for global series).
    /// Formatting is locale-free and deterministic: integers print
    /// without a fraction, everything else with six decimals, NaN as
    /// `nan`.
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.samples
            .iter()
            .map(|s| {
                vec![
                    s.time.to_string(),
                    s.series.to_string(),
                    s.part.map_or_else(|| "-".to_string(), |p| p.0.to_string()),
                    fmt_value(s.value),
                ]
            })
            .collect()
    }

    fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }
}

/// Deterministic value formatting for the time-series CSV.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl Recorder for TimeSeriesRecorder {
    fn record(&mut self, ctx: &RecordCtx<'_>) {
        if !ctx.time.is_multiple_of(self.cadence) {
            return;
        }
        if self.prev.len() < ctx.partitions {
            self.prev.resize(ctx.partitions, IntervalBase::default());
        }
        if ctx.stats.generation() != self.prev_generation {
            // The stats were reset since the last tick (e.g. at the end
            // of warmup): cumulative counters restarted from zero, so
            // the interval baselines must too.
            self.prev_generation = ctx.stats.generation();
            self.prev.fill(IntervalBase::default());
        }
        for i in 0..ctx.partitions {
            let part = PartitionId(i as u16);
            let ps = ctx.stats.partition(part);
            let base = self.prev[i];
            let occupancy = ctx.state.actual[i] as f64;
            let target = ctx.state.targets[i] as f64;
            let evictions = ps.evictions - base.evictions;
            let aef = if evictions == 0 {
                f64::NAN
            } else {
                (ps.evict_futility_sum - base.futility_sum) / evictions as f64
            };
            let values = [
                occupancy,
                target,
                occupancy - target,
                (ps.hits - base.hits) as f64,
                (ps.misses - base.misses) as f64,
                evictions as f64,
                aef,
            ];
            for (series, value) in STANDARD_SERIES.into_iter().zip(values) {
                self.push(Sample {
                    time: ctx.time,
                    series,
                    part: Some(part),
                    value,
                });
            }
            self.prev[i] = IntervalBase {
                hits: ps.hits,
                misses: ps.misses,
                evictions: ps.evictions,
                futility_sum: ps.evict_futility_sum,
            };
        }
        let mut probes = std::mem::take(&mut self.probes);
        probes.clear();
        ctx.scheme.telemetry(ctx.state, &mut probes);
        for p in &probes {
            self.push(Sample {
                time: ctx.time,
                series: p.name,
                part: p.part,
                value: p.value,
            });
        }
        self.probes = probes;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme_api::EvictMaxFutility;

    fn ctx<'a>(
        time: u64,
        state: &'a PartitionState,
        stats: &'a CacheStats,
        scheme: &'a dyn PartitionScheme,
    ) -> RecordCtx<'a> {
        RecordCtx {
            time,
            partitions: state.pools(),
            state,
            stats,
            scheme,
        }
    }

    #[test]
    fn samples_only_on_cadence() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(10, 1000);
        for t in 1..=25 {
            rec.record(&ctx(t, &state, &stats, &scheme));
        }
        // Ticks at t = 10 and t = 20 only, 7 standard series each.
        assert_eq!(rec.len(), 2 * STANDARD_SERIES.len());
        let times: Vec<u64> = rec.samples().map(|s| s.time).collect();
        assert!(times[..7].iter().all(|&t| t == 10));
        assert!(times[7..].iter().all(|&t| t == 20));
    }

    #[test]
    fn interval_deltas_not_cumulative() {
        let scheme = EvictMaxFutility;
        let mut state = PartitionState::new(1, 8);
        state.targets[0] = 4;
        let mut stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 1000);

        stats.record_miss(PartitionId(0));
        stats.record_eviction(PartitionId(0), 0.5);
        state.actual[0] = 3;
        rec.record(&ctx(1, &state, &stats, &scheme));
        stats.record_miss(PartitionId(0));
        stats.record_miss(PartitionId(0));
        rec.record(&ctx(2, &state, &stats, &scheme));

        let misses: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "misses")
            .map(|s| s.value)
            .collect();
        assert_eq!(misses, vec![1.0, 2.0]);
        let aef: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "aef")
            .map(|s| s.value)
            .collect();
        assert_eq!(aef[0], 0.5);
        assert!(aef[1].is_nan(), "no evictions in the second interval");
        let dev: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "deviation")
            .map(|s| s.value)
            .collect();
        assert_eq!(dev, vec![-1.0, -1.0]);
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 10);
        for t in 1..=5 {
            rec.record(&ctx(t, &state, &stats, &scheme));
        }
        assert_eq!(rec.len(), 10);
        assert_eq!(rec.dropped(), 5 * STANDARD_SERIES.len() as u64 - 10);
        // The ring keeps the newest samples.
        assert!(rec.samples().all(|s| s.time >= 4));
    }

    #[test]
    fn stats_reset_rebaselines_instead_of_underflowing() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let mut stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 1000);

        for _ in 0..5 {
            stats.record_miss(PartitionId(0));
        }
        rec.record(&ctx(1, &state, &stats, &scheme));
        stats.reset(); // warmup boundary
        stats.record_miss(PartitionId(0));
        rec.record(&ctx(2, &state, &stats, &scheme));

        let misses: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "misses")
            .map(|s| s.value)
            .collect();
        assert_eq!(misses, vec![5.0, 1.0]);
    }

    #[test]
    fn csv_value_formatting_is_deterministic() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(-17.0), "-17");
        assert_eq!(fmt_value(0.5), "0.500000");
        assert_eq!(fmt_value(f64::NAN), "nan");
    }
}
