//! The flight recorder: opt-in time-series observability for
//! [`PartitionedCache`](crate::PartitionedCache).
//!
//! The paper's sizing claims are temporal — Figure 5's MAD describes a
//! random walk around target, Algorithm 2 is a feedback controller,
//! Vantage's apertures move with size error — but end-of-run scalars
//! cannot show any of that. A [`Recorder`] attached to the engine is
//! ticked after every access; the stock [`TimeSeriesRecorder`] samples
//! on an access-count cadence, capturing per-partition
//! occupancy/target/deviation, interval hit/miss/eviction counts, the
//! interval AEF, and whatever scheme-specific probes the scheme pushes
//! through [`PartitionScheme::telemetry`].
//!
//! Cost model: with no recorder attached the engine pays one branch per
//! access and allocates nothing (see `tests/no_alloc_hot_path.rs`); with
//! a recorder attached, off-cadence accesses pay one extra modulo, and
//! sampling ticks do O(partitions + probes) work against a bounded ring
//! buffer.

use crate::ids::PartitionId;
use crate::ranking_api::FutilityRanking;
use crate::scheme_api::{PartitionScheme, PartitionState, Probe};
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use crate::stats::CacheStats;
use std::any::Any;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::Mutex;

/// Everything a [`Recorder`] may inspect on a tick: engine time, the
/// sizing state, accumulated statistics and the scheme (for telemetry
/// probes). Borrows are read-only; a recorder observes, never steers.
pub struct RecordCtx<'a> {
    /// Engine time (accesses processed so far, including this one).
    pub time: u64,
    /// Number of application partitions (scheme pools excluded — their
    /// dynamics surface through scheme telemetry probes instead).
    pub partitions: usize,
    /// Live sizing state (targets, actual sizes, cumulative counters).
    pub state: &'a PartitionState,
    /// Accumulated statistics, including the reset generation.
    pub stats: &'a CacheStats,
    /// The partitioning scheme, for [`PartitionScheme::telemetry`].
    pub scheme: &'a dyn PartitionScheme,
    /// The futility ranking, for [`FutilityRanking::telemetry`]
    /// (ranking op counters; empty unless opted in via
    /// [`FutilityRanking::set_op_probes`]).
    pub ranking: &'a dyn FutilityRanking,
}

/// An observer ticked by the engine after every completed access while
/// attached via
/// [`PartitionedCache::set_recorder`](crate::PartitionedCache::set_recorder).
pub trait Recorder: Send {
    /// Observe the cache after one access. Implementations decide their
    /// own sampling cadence from `ctx.time`.
    fn record(&mut self, ctx: &RecordCtx<'_>);

    /// Downcast support for retrieving a concrete recorder back from
    /// the engine.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Serialize the recorder's state for checkpointing. Recorders with
    /// no replay-relevant state keep the default, which writes an empty
    /// named section so restore still verifies recorder identity.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("stateless-recorder");
        w.end();
    }

    /// Restore state saved by [`save_state`](Self::save_state) into a
    /// recorder of the same kind and configuration.
    ///
    /// # Errors
    /// [`SnapshotError`] on decode failure or configuration mismatch.
    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("stateless-recorder")?;
        r.end()
    }
}

/// One recorded time-series sample in long format: at `time`, series
/// `series` (for `part`, if per-partition) had value `value`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Sample {
    /// Engine time of the sampling tick.
    pub time: u64,
    /// Series name (standard engine series or a scheme probe name).
    pub series: &'static str,
    /// Partition the sample belongs to; `None` for cache-global series.
    pub part: Option<PartitionId>,
    /// Sampled value. NaN encodes "undefined this interval" (e.g. the
    /// AEF of an interval with no evictions).
    pub value: f64,
}

/// Per-partition counter snapshot from the previous sampling tick, so
/// each tick reports interval deltas rather than cumulative totals.
#[derive(Copy, Clone, Debug, Default)]
struct IntervalBase {
    hits: u64,
    misses: u64,
    evictions: u64,
    futility_sum: f64,
}

/// The standard engine series emitted per partition on every sampling
/// tick, in emission order. `occupancy`/`target`/`deviation` are
/// instantaneous; `hits`/`misses`/`evictions`/`aef` cover the interval
/// since the previous tick.
pub const STANDARD_SERIES: [&str; 7] = [
    "occupancy",
    "target",
    "deviation",
    "hits",
    "misses",
    "evictions",
    "aef",
];

/// Ring-buffered sampling recorder: every `cadence` accesses, emit the
/// [`STANDARD_SERIES`] for each application partition plus the scheme's
/// telemetry probes, into a bounded ring of [`Sample`]s (oldest samples
/// drop first once `capacity` is reached).
///
/// A [`CacheStats::reset`] between ticks (e.g. the post-warmup reset of
/// the figure drivers) is detected through the stats generation counter;
/// the recorder then rebaselines its interval snapshots to zero instead
/// of underflowing the counter deltas, so recording may span a warmup
/// boundary.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    cadence: u64,
    capacity: usize,
    samples: VecDeque<Sample>,
    dropped: u64,
    prev: Vec<IntervalBase>,
    prev_generation: u64,
    /// Scratch buffer handed to `PartitionScheme::telemetry`.
    probes: Vec<Probe>,
    /// Rows written to the streaming sink so far (counts across a
    /// checkpoint/resume; the sink itself is reattached by the caller).
    spilled: u64,
    spill: Option<Spill>,
}

/// Streaming spill sink: ring overflow writes the oldest sample out as
/// a CSV row instead of dropping it, so an arbitrarily long recording
/// runs in bounded memory while producing output byte-identical to the
/// unbounded in-memory path.
struct Spill {
    sink: Box<dyn Write + Send>,
    /// First write error, deferred to [`TimeSeriesRecorder::finish_stream`]
    /// (`record` ticks cannot surface it).
    error: Option<io::Error>,
}

impl std::fmt::Debug for Spill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Spill")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl Spill {
    fn write_row(&mut self, sample: &Sample) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = write_sample_row(&mut self.sink, sample) {
            self.error = Some(e);
        }
    }
}

/// One long-format CSV row, byte-identical to what
/// [`TimeSeriesRecorder::rows`] plus a `join(",")`-per-row CSV writer
/// produces for the same sample.
fn write_sample_row(sink: &mut dyn Write, s: &Sample) -> io::Result<()> {
    let part = s.part.map_or_else(|| "-".to_string(), |p| p.0.to_string());
    writeln!(
        sink,
        "{},{},{},{}",
        s.time,
        s.series,
        part,
        fmt_value(s.value)
    )
}

impl TimeSeriesRecorder {
    /// A recorder sampling every `cadence` accesses, retaining at most
    /// `capacity` samples (oldest dropped first).
    ///
    /// # Panics
    /// Panics if `cadence` or `capacity` is zero.
    pub fn new(cadence: u64, capacity: usize) -> Self {
        assert!(cadence > 0, "cadence must be positive");
        assert!(capacity > 0, "capacity must be positive");
        TimeSeriesRecorder {
            cadence,
            capacity,
            samples: VecDeque::new(),
            dropped: 0,
            prev: Vec::new(),
            prev_generation: 0,
            probes: Vec::new(),
            spilled: 0,
            spill: None,
        }
    }

    /// Sampling cadence in accesses.
    pub fn cadence(&self) -> u64 {
        self.cadence
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl DoubleEndedIterator<Item = &Sample> + ExactSizeIterator {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted from the ring because `capacity` was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard all retained samples (baselines are kept, so subsequent
    /// interval deltas remain correct).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.dropped = 0;
    }

    /// CSV header matching [`rows`](Self::rows).
    pub const CSV_HEADER: [&'static str; 4] = ["time", "series", "part", "value"];

    /// The retained samples as long-format CSV rows
    /// (`time,series,part,value`; `part` is `-` for global series).
    /// Formatting is locale-free and deterministic: integers print
    /// without a fraction, everything else with six decimals, NaN as
    /// `nan`.
    pub fn rows(&self) -> Vec<Vec<String>> {
        self.samples
            .iter()
            .map(|s| {
                vec![
                    s.time.to_string(),
                    s.series.to_string(),
                    s.part.map_or_else(|| "-".to_string(), |p| p.0.to_string()),
                    fmt_value(s.value),
                ]
            })
            .collect()
    }

    /// Switch to bounded streaming mode: the CSV header is written to
    /// `sink` immediately, and from then on every sample the ring would
    /// drop is written out as a CSV row instead. Together with
    /// [`finish_stream`](Self::finish_stream) the sink receives exactly
    /// the bytes the in-memory path (an unbounded ring rendered through
    /// [`rows`](Self::rows) and a CSV writer) would produce.
    ///
    /// # Errors
    /// Propagates the header write failure.
    pub fn stream_to(&mut self, mut sink: Box<dyn Write + Send>) -> io::Result<()> {
        writeln!(sink, "{}", Self::CSV_HEADER.join(","))?;
        self.spill = Some(Spill { sink, error: None });
        Ok(())
    }

    /// Whether a streaming sink is attached.
    pub fn is_streaming(&self) -> bool {
        self.spill.is_some()
    }

    /// Rows already written to the streaming sink (0 when not
    /// streaming).
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// End streaming mode: drain the retained ring to the sink (oldest
    /// first), flush, and detach. The ring is left empty.
    ///
    /// # Errors
    /// The first deferred overflow-write error, or the drain/flush
    /// failure.
    pub fn finish_stream(&mut self) -> io::Result<()> {
        let mut spill = self
            .spill
            .take()
            .ok_or_else(|| io::Error::other("finish_stream without stream_to"))?;
        if let Some(e) = spill.error.take() {
            return Err(e);
        }
        while let Some(sample) = self.samples.pop_front() {
            write_sample_row(&mut spill.sink, &sample)?;
            self.spilled += 1;
        }
        spill.sink.flush()
    }

    fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            let oldest = self.samples.pop_front().expect("capacity > 0");
            match &mut self.spill {
                Some(spill) => {
                    spill.write_row(&oldest);
                    self.spilled += 1;
                }
                None => self.dropped += 1,
            }
        }
        self.samples.push_back(sample);
    }
}

/// Re-intern a series name decoded from a snapshot as the
/// `&'static str` that [`Sample`] requires. Standard engine series
/// resolve to the [`STANDARD_SERIES`] constants; scheme probe names go
/// through a process-global registry that leaks one allocation per
/// distinct name (bounded by the set of probe names schemes define, so
/// effectively constant).
fn intern_series(name: &str) -> &'static str {
    if let Some(&s) = STANDARD_SERIES.iter().find(|&&s| s == name) {
        return s;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().expect("series name registry poisoned");
    if let Some(&s) = extra.iter().find(|&&s| s == name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// Deterministic value formatting for the time-series CSV.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl Recorder for TimeSeriesRecorder {
    fn record(&mut self, ctx: &RecordCtx<'_>) {
        if !ctx.time.is_multiple_of(self.cadence) {
            return;
        }
        if self.prev.len() < ctx.partitions {
            self.prev.resize(ctx.partitions, IntervalBase::default());
        }
        if ctx.stats.generation() != self.prev_generation {
            // The stats were reset since the last tick (e.g. at the end
            // of warmup): cumulative counters restarted from zero, so
            // the interval baselines must too.
            self.prev_generation = ctx.stats.generation();
            self.prev.fill(IntervalBase::default());
        }
        for i in 0..ctx.partitions {
            let part = PartitionId(i as u16);
            let ps = ctx.stats.partition(part);
            let base = self.prev[i];
            let occupancy = ctx.state.actual[i] as f64;
            let target = ctx.state.targets[i] as f64;
            let evictions = ps.evictions - base.evictions;
            let aef = if evictions == 0 {
                f64::NAN
            } else {
                (ps.evict_futility_sum - base.futility_sum) / evictions as f64
            };
            let values = [
                occupancy,
                target,
                occupancy - target,
                (ps.hits - base.hits) as f64,
                (ps.misses - base.misses) as f64,
                evictions as f64,
                aef,
            ];
            for (series, value) in STANDARD_SERIES.into_iter().zip(values) {
                self.push(Sample {
                    time: ctx.time,
                    series,
                    part: Some(part),
                    value,
                });
            }
            self.prev[i] = IntervalBase {
                hits: ps.hits,
                misses: ps.misses,
                evictions: ps.evictions,
                futility_sum: ps.evict_futility_sum,
            };
        }
        let mut probes = std::mem::take(&mut self.probes);
        probes.clear();
        ctx.scheme.telemetry(ctx.state, &mut probes);
        ctx.ranking.telemetry(&mut probes);
        for p in &probes {
            self.push(Sample {
                time: ctx.time,
                series: p.name,
                part: p.part,
                value: p.value,
            });
        }
        self.probes = probes;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.begin("timeseries-recorder");
        w.u64(self.cadence);
        w.usize(self.capacity);
        w.u64(self.dropped);
        w.u64(self.spilled);
        w.u64(self.prev_generation);
        w.usize(self.prev.len());
        for b in &self.prev {
            w.u64(b.hits);
            w.u64(b.misses);
            w.u64(b.evictions);
            w.f64(b.futility_sum);
        }
        w.usize(self.samples.len());
        for s in &self.samples {
            w.u64(s.time);
            w.str(s.series);
            match s.part {
                Some(p) => {
                    w.u8(1);
                    w.u16(p.0);
                }
                None => w.u8(0),
            }
            w.f64(s.value);
        }
        w.end();
    }

    fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
        r.begin("timeseries-recorder")?;
        let (cadence, capacity) = (r.u64()?, r.usize()?);
        if cadence != self.cadence || capacity != self.capacity {
            return Err(SnapshotError::mismatch(format!(
                "recorder is cadence={} capacity={}, snapshot is cadence={cadence} capacity={capacity}",
                self.cadence, self.capacity
            )));
        }
        let dropped = r.u64()?;
        let spilled = r.u64()?;
        let prev_generation = r.u64()?;
        let prev_len = r.seq_len(32)?;
        let mut prev = Vec::with_capacity(prev_len);
        for _ in 0..prev_len {
            prev.push(IntervalBase {
                hits: r.u64()?,
                misses: r.u64()?,
                evictions: r.u64()?,
                futility_sum: r.f64()?,
            });
        }
        let n = r.seq_len(18)?;
        if n > capacity {
            return Err(SnapshotError::corrupt(format!(
                "ring holds {n} samples but capacity is {capacity}"
            )));
        }
        let mut samples = VecDeque::with_capacity(n);
        for _ in 0..n {
            let time = r.u64()?;
            let series = intern_series(r.str()?);
            let part = match r.u8()? {
                0 => None,
                1 => Some(PartitionId(r.u16()?)),
                tag => {
                    return Err(SnapshotError::corrupt(format!(
                        "invalid sample partition tag {tag}"
                    )))
                }
            };
            let value = r.f64()?;
            samples.push_back(Sample {
                time,
                series,
                part,
                value,
            });
        }
        r.end()?;
        self.samples = samples;
        self.dropped = dropped;
        self.spilled = spilled;
        self.prev = prev;
        self.prev_generation = prev_generation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking_api::NaiveLru;
    use crate::scheme_api::EvictMaxFutility;
    use std::sync::OnceLock;

    /// A quiescent ranking for contexts whose test doesn't exercise
    /// ranking telemetry (the default ranking emits no probes).
    fn idle_ranking() -> &'static NaiveLru {
        static R: OnceLock<NaiveLru> = OnceLock::new();
        R.get_or_init(NaiveLru::new)
    }

    fn ctx<'a>(
        time: u64,
        state: &'a PartitionState,
        stats: &'a CacheStats,
        scheme: &'a dyn PartitionScheme,
    ) -> RecordCtx<'a> {
        RecordCtx {
            time,
            partitions: state.pools(),
            state,
            stats,
            scheme,
            ranking: idle_ranking(),
        }
    }

    #[test]
    fn samples_only_on_cadence() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(10, 1000);
        for t in 1..=25 {
            rec.record(&ctx(t, &state, &stats, &scheme));
        }
        // Ticks at t = 10 and t = 20 only, 7 standard series each.
        assert_eq!(rec.len(), 2 * STANDARD_SERIES.len());
        let times: Vec<u64> = rec.samples().map(|s| s.time).collect();
        assert!(times[..7].iter().all(|&t| t == 10));
        assert!(times[7..].iter().all(|&t| t == 20));
    }

    #[test]
    fn interval_deltas_not_cumulative() {
        let scheme = EvictMaxFutility;
        let mut state = PartitionState::new(1, 8);
        state.targets[0] = 4;
        let mut stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 1000);

        stats.record_miss(PartitionId(0));
        stats.record_eviction(PartitionId(0), 0.5);
        state.actual[0] = 3;
        rec.record(&ctx(1, &state, &stats, &scheme));
        stats.record_miss(PartitionId(0));
        stats.record_miss(PartitionId(0));
        rec.record(&ctx(2, &state, &stats, &scheme));

        let misses: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "misses")
            .map(|s| s.value)
            .collect();
        assert_eq!(misses, vec![1.0, 2.0]);
        let aef: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "aef")
            .map(|s| s.value)
            .collect();
        assert_eq!(aef[0], 0.5);
        assert!(aef[1].is_nan(), "no evictions in the second interval");
        let dev: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "deviation")
            .map(|s| s.value)
            .collect();
        assert_eq!(dev, vec![-1.0, -1.0]);
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 10);
        for t in 1..=5 {
            rec.record(&ctx(t, &state, &stats, &scheme));
        }
        assert_eq!(rec.len(), 10);
        assert_eq!(rec.dropped(), 5 * STANDARD_SERIES.len() as u64 - 10);
        // The ring keeps the newest samples.
        assert!(rec.samples().all(|s| s.time >= 4));
    }

    #[test]
    fn stats_reset_rebaselines_instead_of_underflowing() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let mut stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(1, 1000);

        for _ in 0..5 {
            stats.record_miss(PartitionId(0));
        }
        rec.record(&ctx(1, &state, &stats, &scheme));
        stats.reset(); // warmup boundary
        stats.record_miss(PartitionId(0));
        rec.record(&ctx(2, &state, &stats, &scheme));

        let misses: Vec<f64> = rec
            .samples()
            .filter(|s| s.series == "misses")
            .map(|s| s.value)
            .collect();
        assert_eq!(misses, vec![5.0, 1.0]);
    }

    #[test]
    fn ranking_telemetry_lands_after_scheme_probes() {
        /// A ranking stub that emits one global probe per tick.
        struct Probing(u64);
        impl FutilityRanking for Probing {
            fn name(&self) -> &'static str {
                "probing-stub"
            }
            fn reset(&mut self, _pools: usize) {}
            fn on_insert(&mut self, _: PartitionId, _: u64, _: u64, _: crate::AccessMeta) {}
            fn on_hit(&mut self, _: PartitionId, _: u64, _: u64, _: crate::AccessMeta) {}
            fn on_evict(&mut self, _: PartitionId, _: u64) {}
            fn on_retag(&mut self, _: PartitionId, _: PartitionId, _: u64) {}
            fn futility(&self, _: PartitionId, _: u64) -> f64 {
                0.0
            }
            fn max_futility_line(&self, _: PartitionId) -> Option<u64> {
                None
            }
            fn pool_len(&self, _: PartitionId) -> usize {
                0
            }
            fn telemetry(&self, out: &mut Vec<Probe>) {
                out.push(Probe::global("rank_inserts", self.0 as f64));
            }
            fn save_state(&self, w: &mut SnapshotWriter) {
                w.begin("probing-stub");
                w.end();
            }
            fn load_state(&mut self, r: &mut SnapshotReader) -> Result<(), SnapshotError> {
                r.begin("probing-stub")?;
                r.end()
            }
        }

        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        let ranking = Probing(42);
        let mut rec = TimeSeriesRecorder::new(1, 1000);
        rec.record(&RecordCtx {
            time: 1,
            partitions: state.pools(),
            state: &state,
            stats: &stats,
            scheme: &scheme,
            ranking: &ranking,
        });
        let probes: Vec<_> = rec
            .samples()
            .filter(|s| s.series == "rank_inserts")
            .collect();
        assert_eq!(probes.len(), 1);
        assert_eq!(probes[0].value, 42.0);
        assert_eq!(probes[0].part, None);
        // The probe sample comes after all standard series of the tick.
        assert_eq!(rec.samples().last().unwrap().series, "rank_inserts");
    }

    #[test]
    fn csv_value_formatting_is_deterministic() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(-17.0), "-17");
        assert_eq!(fmt_value(0.5), "0.500000");
        assert_eq!(fmt_value(f64::NAN), "nan");
    }

    #[test]
    fn overflow_drops_exactly_the_oldest_and_keeps_a_contiguous_suffix() {
        let scheme = EvictMaxFutility;
        let state = PartitionState::new(1, 8);
        let stats = CacheStats::new(1);
        // Capacity deliberately not a multiple of the per-tick sample
        // count, so the ring boundary cuts through a tick.
        let cap = 23;
        let mut rec = TimeSeriesRecorder::new(1, cap);
        let mut unbounded = TimeSeriesRecorder::new(1, 1_000_000);
        let ticks = 9u64;
        for t in 1..=ticks {
            rec.record(&ctx(t, &state, &stats, &scheme));
            unbounded.record(&ctx(t, &state, &stats, &scheme));
        }
        let total = ticks * STANDARD_SERIES.len() as u64;
        assert_eq!(rec.len(), cap);
        assert_eq!(
            rec.dropped(),
            total - cap as u64,
            "dropped() must count exactly the evicted samples"
        );
        assert_eq!(unbounded.dropped(), 0);
        // The retained samples are exactly the newest `cap` samples of
        // the unbounded recording, in emission order.
        // Bit-level sample identity (NaN-valued series like a division
        // by zero `aef` compare equal by bits, not by `==`).
        let key = |s: &Sample| (s.time, s.series, s.part, s.value.to_bits());
        let suffix: Vec<_> = unbounded
            .samples()
            .skip((total - cap as u64) as usize)
            .map(key)
            .collect();
        let kept: Vec<_> = rec.samples().map(key).collect();
        assert_eq!(kept, suffix, "ring must keep a contiguous suffix");
        assert_eq!(
            rec.rows(),
            unbounded.rows()[(total - cap as u64) as usize..]
        );
    }

    #[test]
    fn streaming_output_is_byte_identical_to_in_memory_rows() {
        use std::sync::{Arc, Mutex as StdMutex};

        /// Shared in-memory sink standing in for a CSV file.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let scheme = EvictMaxFutility;
        let mut state = PartitionState::new(2, 16);
        state.targets = vec![9, 7];
        let stats = CacheStats::new(2);

        // Streaming arm: a tiny ring spilling to the sink.
        let buf = SharedBuf::default();
        let mut streaming = TimeSeriesRecorder::new(3, 5);
        streaming.stream_to(Box::new(buf.clone())).unwrap();
        // In-memory arm: a ring large enough to never drop.
        let mut in_memory = TimeSeriesRecorder::new(3, 1_000_000);

        for t in 1..=50 {
            state.actual[0] = (t % 11) as usize;
            state.actual[1] = (t % 7) as usize;
            streaming.record(&ctx(t, &state, &stats, &scheme));
            in_memory.record(&ctx(t, &state, &stats, &scheme));
        }
        streaming.finish_stream().unwrap();
        assert!(streaming.is_empty(), "finish_stream drains the ring");
        assert_eq!(streaming.dropped(), 0, "spilled samples are not drops");

        let mut expected = Vec::new();
        writeln!(expected, "{}", TimeSeriesRecorder::CSV_HEADER.join(",")).unwrap();
        for row in in_memory.rows() {
            writeln!(expected, "{}", row.join(",")).unwrap();
        }
        let got = buf.0.lock().unwrap().clone();
        assert_eq!(
            String::from_utf8(got).unwrap(),
            String::from_utf8(expected).unwrap()
        );
        assert_eq!(streaming.spilled(), in_memory.len() as u64);
    }

    #[test]
    fn snapshot_round_trip_restores_ring_baselines_and_counters() {
        let scheme = EvictMaxFutility;
        let mut state = PartitionState::new(1, 8);
        state.targets[0] = 4;
        let mut stats = CacheStats::new(1);
        let mut rec = TimeSeriesRecorder::new(2, 9);
        for t in 1..=12 {
            if t % 3 == 0 {
                stats.record_miss(PartitionId(0));
            }
            state.actual[0] = (t % 5) as usize;
            rec.record(&ctx(t, &state, &stats, &scheme));
        }
        let mut w = SnapshotWriter::new();
        rec.save_state(&mut w);
        let bytes = w.finish();

        let mut back = TimeSeriesRecorder::new(2, 9);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.dropped(), rec.dropped());
        assert_eq!(back.rows(), rec.rows());
        // Continuation must be identical: same future ticks, same deltas.
        for t in 13..=20 {
            stats.record_miss(PartitionId(0));
            state.actual[0] = (t % 5) as usize;
            rec.record(&ctx(t, &state, &stats, &scheme));
            back.record(&ctx(t, &state, &stats, &scheme));
        }
        assert_eq!(back.rows(), rec.rows());
        assert_eq!(back.dropped(), rec.dropped());

        // A geometry mismatch is rejected, not silently misloaded.
        let mut wrong = TimeSeriesRecorder::new(5, 9);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            wrong.load_state(&mut r),
            Err(SnapshotError::Mismatch { .. })
        ));
    }
}
