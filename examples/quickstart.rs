//! Quickstart: partition a shared cache between two synthetic threads
//! with feedback-based Futility Scaling and watch it hold an asymmetric
//! 3:1 split while keeping associativity high.
//!
//! Run with: `cargo run --release --example quickstart`

use futility_scaling::prelude::*;

fn main() {
    // A 2MB, 16-way hashed set-associative L2 (32K lines of 64B).
    let array = SetAssociative::with_lines(32_768, 16, LineHash::new(42));

    // Feedback-based Futility Scaling over the paper's coarse-grain
    // timestamp LRU: the exact hardware design of Section V.
    let mut cache = PartitionedCache::new(
        Box::new(array),
        Box::new(CoarseLru::new()),
        Box::new(FsFeedback::default_config()),
        2,
    );

    // Give partition 0 three quarters of the cache.
    cache.set_targets(&[24_576, 8_192]);

    // Two synthetic threads: a reuse-friendly mcf-like thread and a
    // streaming lbm-like bully that would otherwise flood the cache.
    let mcf = benchmark("mcf").expect("profile exists");
    let lbm = benchmark("lbm").expect("profile exists");
    let traces = vec![
        mcf.generate_with_base(400_000, 1, 0),
        lbm.generate_with_base(400_000, 2, 1 << 40),
    ];

    let mut driver = InterleavedDriver::new(traces);
    driver.run(&mut cache, 0.3); // 30% warmup, then measure

    println!("scheme:  {}", cache.scheme().name());
    println!("ranking: {}", cache.ranking().name());
    for i in 0..2 {
        let part = PartitionId(i as u16);
        let stats = cache.stats().partition(part);
        println!(
            "partition {i}: target {:>6} lines | actual {:>6} | miss ratio {:.3} | AEF {:.3}",
            cache.state().targets[i],
            cache.state().actual[i],
            stats.miss_ratio(),
            stats.aef(),
        );
    }

    let occupancy0 = cache.state().actual[0] as f64 / 24_576.0;
    println!(
        "\nthe streaming bully was held to its quarter: partition 0 keeps \
         {:.1}% of its 1.5MB guarantee",
        occupancy0 * 100.0
    );
    assert!(
        (occupancy0 - 1.0).abs() < 0.1,
        "FS should hold the 3:1 split (got {occupancy0:.3})"
    );
}
