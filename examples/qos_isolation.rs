//! QoS isolation demo (a miniature Figure 7): four latency-sensitive
//! `gromacs` subject threads with 256KB guarantees share an L2 with
//! four streaming `lbm` bullies, under three enforcement schemes.
//! Without partitioning the bullies flush the subjects; Futility
//! Scaling holds every guarantee while keeping subject associativity
//! close to the fully-associative ideal.
//!
//! Run with: `cargo run --release --example qos_isolation`

use futility_scaling::prelude::*;
use simqos::static_qos;

const TOTAL_LINES: usize = 32_768; // 2MB
const SUBJECTS: usize = 4;
const SUBJECT_LINES: usize = 4_096; // 256KB each
const CORES: usize = 8;

fn run(scheme_name: &str) -> (f64, f64, f64) {
    let scheme: Box<dyn PartitionScheme> = match scheme_name {
        "fs-feedback" => Box::new(FsFeedback::default_config()),
        "pf" => Box::new(Pf),
        "unpartitioned" => Box::new(cachesim::scheme_api::EvictMaxFutility),
        _ => unreachable!(),
    };
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(
            TOTAL_LINES,
            16,
            LineHash::new(7),
        )),
        Box::new(CoarseLru::new()),
        scheme,
        CORES,
    );
    cache.set_targets(&static_qos(
        TOTAL_LINES,
        SUBJECTS,
        SUBJECT_LINES,
        CORES - SUBJECTS,
    ));

    let gromacs = benchmark("gromacs").expect("profile");
    let lbm = benchmark("lbm").expect("profile");
    let threads: Vec<Thread> = (0..CORES)
        .map(|i| {
            let profile = if i < SUBJECTS { &gromacs } else { &lbm };
            Thread::new(
                format!("core{i}"),
                profile.generate_with_base(200_000, 10 + i as u64, (i as u64) << 40),
            )
        })
        .collect();

    let mut sys = System::new(SystemConfig::micro2014(), cache, threads);
    let result = sys.run(0.3);

    let mut occupancy = 0.0;
    let mut aef = 0.0;
    let mut ipc = 0.0;
    for i in 0..SUBJECTS {
        let stats = sys.cache().stats();
        occupancy += stats.avg_occupancy(PartitionId(i as u16)) / SUBJECT_LINES as f64;
        aef += stats.partition(PartitionId(i as u16)).aef();
        ipc += result.threads[i].ipc();
    }
    (
        occupancy / SUBJECTS as f64,
        aef / SUBJECTS as f64,
        ipc / SUBJECTS as f64,
    )
}

fn main() {
    println!(
        "{:>14}  {:>16}  {:>11}  {:>11}",
        "scheme", "subject occupancy", "subject AEF", "subject IPC"
    );
    let mut fs_ipc = 0.0;
    let mut shared_ipc = 0.0;
    for scheme in ["unpartitioned", "pf", "fs-feedback"] {
        let (occ, aef, ipc) = run(scheme);
        println!(
            "{scheme:>14}  {:>15.1}%  {aef:>11.3}  {ipc:>11.3}",
            occ * 100.0
        );
        match scheme {
            "fs-feedback" => fs_ipc = ipc,
            "unpartitioned" => shared_ipc = ipc,
            _ => {}
        }
    }
    println!(
        "\nFS holds the 256KB guarantees against the lbm bullies and improves \
         subject IPC by {:.1}% over unregulated sharing.",
        (fs_ipc / shared_ipc - 1.0) * 100.0
    );
    assert!(
        fs_ipc > shared_ipc,
        "isolation must beat unregulated sharing for the subjects"
    );
}
