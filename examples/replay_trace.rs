//! Replay an external trace: demonstrates the text/binary trace import
//! path, so real L2 traces (from Sniper, gem5, a pintool, …) can drive
//! the partitioned cache instead of the synthetic profiles.
//!
//! Run with: `cargo run --release --example replay_trace [path/to/trace.txt]`
//! Without an argument, a small self-generated fixture is replayed.

use futility_scaling::prelude::*;
use workloads::{load_trace, parse_text_trace, save_trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path)?;
            parse_text_trace(std::io::BufReader::new(file))?
        }
        None => {
            // No input given: build a fixture in the text format, parse
            // it back, and also exercise the binary round-trip.
            let text = "# demo trace: a hot loop with a cold stream\n".to_string()
                + &(0..5_000)
                    .map(|i| {
                        if i % 3 == 0 {
                            format!("0x{:x} 8", 0x1000 + i % 64) // hot loop
                        } else {
                            format!("{} 4", 100_000 + i) // stream
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n");
            let parsed = parse_text_trace(text.as_bytes())?;
            let mut bin = Vec::new();
            save_trace(&parsed, &mut bin)?;
            load_trace(&bin[..])? // lossless round-trip
        }
    };
    println!(
        "replaying {} accesses over {} distinct lines",
        trace.len(),
        trace.footprint()
    );

    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(4_096, 16, LineHash::new(1))),
        Box::new(CoarseLru::new()),
        Box::new(FsFeedback::default_config()),
        1,
    );
    for (access, next_use) in trace.iter_with_next_use() {
        cache.access(
            PartitionId(0),
            access.addr,
            AccessMeta::with_next_use(next_use),
        );
    }
    let stats = cache.stats().partition(PartitionId(0));
    println!(
        "hits {} / misses {} (miss ratio {:.3}), AEF {:.3}",
        stats.hits,
        stats.misses,
        stats.miss_ratio(),
        stats.aef()
    );
    Ok(())
}
