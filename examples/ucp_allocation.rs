//! Utility-based allocation on top of Futility Scaling (an extension
//! beyond the paper's static QoS policy): profile each thread's LRU
//! miss curve with Mattson stack-distance analysis, let a UCP-style
//! greedy allocator hand out cache blocks by marginal utility, and
//! enforce the resulting targets with feedback FS.
//!
//! Run with: `cargo run --release --example ucp_allocation`

use futility_scaling::prelude::*;
use simqos::{equal_share, lru_miss_curve, ucp_allocate};

const TOTAL_LINES: usize = 16_384; // 1MB
const BLOCK: usize = 1_024; // allocation granularity (64KB)

fn main() {
    // Three threads with very different utility curves.
    let profiles = ["gromacs", "mcf", "lbm"];
    let traces: Vec<Trace> = profiles
        .iter()
        .enumerate()
        .map(|(i, name)| {
            benchmark(name).expect("profile").generate_with_base(
                250_000,
                7 + i as u64,
                (i as u64) << 40,
            )
        })
        .collect();

    // 1. Profile: hits gained at k blocks = accesses × (miss(0) − miss(k)).
    let capacities: Vec<usize> = (0..=TOTAL_LINES / BLOCK).map(|k| k * BLOCK).collect();
    let hit_curves: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| {
            let misses = lru_miss_curve(t, &capacities);
            misses
                .iter()
                .map(|m| (misses[0] - m) * t.len() as f64)
                .collect()
        })
        .collect();

    // 2. Allocate greedily by marginal utility.
    let blocks = ucp_allocate(&hit_curves, TOTAL_LINES / BLOCK);
    let targets: Vec<usize> = blocks.iter().map(|&b| b * BLOCK).collect();
    println!("UCP allocation (blocks of {BLOCK} lines):");
    for (name, t) in profiles.iter().zip(&targets) {
        println!("  {name:>8}: {t:>6} lines ({:>4}KB)", t * 64 / 1024);
    }

    // 3. Enforce with feedback FS and compare against an equal split.
    let run = |targets: &[usize]| -> f64 {
        let mut cache = PartitionedCache::new(
            Box::new(SetAssociative::with_lines(
                TOTAL_LINES,
                16,
                LineHash::new(5),
            )),
            Box::new(CoarseLru::new()),
            Box::new(FsFeedback::default_config()),
            3,
        );
        cache.set_targets(targets);
        InterleavedDriver::new(traces.clone()).run(&mut cache, 0.3);
        // Total post-warmup hits across threads.
        (0..3)
            .map(|i| cache.stats().partition(PartitionId(i as u16)).hits as f64)
            .sum()
    };
    let ucp_hits = run(&targets);
    let equal_hits = run(&equal_share(TOTAL_LINES, 3));
    println!(
        "\ntotal hits: UCP {ucp_hits:.0} vs equal split {equal_hits:.0} \
         ({:+.1}%)",
        (ucp_hits / equal_hits - 1.0) * 100.0
    );
    assert!(
        ucp_hits >= equal_hits * 0.98,
        "utility-driven targets should not lose to a blind equal split"
    );
}
