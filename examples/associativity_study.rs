//! Associativity study (a miniature Figures 2 + 4): demonstrates the
//! paper's central claim on one screen. A cache is split into a growing
//! number of equal partitions running identical mcf-like threads; under
//! Partitioning-First the average eviction futility (AEF) of partition
//! 0 collapses toward the 0.5 random floor as partitions multiply,
//! while Futility Scaling holds it near the unpartitioned level.
//!
//! Run with: `cargo run --release --example associativity_study`

use futility_scaling::prelude::*;

const PARTITION_LINES: usize = 2_048; // 128KB per partition

fn aef_of_partition0(scheme: Box<dyn PartitionScheme>, n: usize) -> f64 {
    let lines = PARTITION_LINES * n;
    let mut cache = PartitionedCache::new(
        Box::new(SetAssociative::with_lines(lines, 16, LineHash::new(3))),
        Box::new(ExactLru::new()),
        scheme,
        n,
    );
    let mcf = benchmark("mcf").expect("profile");
    let traces: Vec<Trace> = (0..n)
        .map(|i| mcf.generate_with_base(50_000, 100 + i as u64, (i as u64) << 40))
        .collect();
    let mut driver = InterleavedDriver::new(traces);
    driver.run(&mut cache, 0.3);
    cache.stats().partition(PartitionId(0)).aef()
}

fn main() {
    println!("AEF of partition 0 (identical mcf threads, 128KB each, 16-way):\n");
    println!(
        "{:>4}  {:>8}  {:>12}  {:>7}",
        "N", "PF", "FS-feedback", "gap"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let pf = aef_of_partition0(Box::new(Pf), n);
        let fs = aef_of_partition0(Box::new(FsFeedback::default_config()), n);
        println!("{n:>4}  {pf:>8.3}  {fs:>12.3}  {:>+7.3}", fs - pf);
        if n >= 16 {
            assert!(
                fs > pf,
                "FS must preserve associativity where PF degrades (N={n})"
            );
        }
    }
    println!(
        "\nPF's victim pool shrinks to ~R/N candidates as N grows, driving its\n\
         AEF toward the futility-blind 0.5 floor; FS always picks from all 16\n\
         candidates, so its AEF is independent of the partition count\n\
         (paper, Sections III-C and IV-C)."
    );
}
